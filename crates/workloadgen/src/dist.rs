//! Statistical distributions used by the generators.
//!
//! Only `rand`'s uniform source is assumed; everything else (normal via
//! Box–Muller, log-normal, exponential, bounded Zipf, categorical,
//! piecewise-empirical) is implemented here. The paper notes (§7) that
//! apart from the Zipf-like access frequencies, workload behaviour "does
//! not fit well-known statistical distributions", so the empirical
//! (trace-is-the-model) sampler is a first-class citizen.

use rand::Rng;

/// Sample a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 exactly (ln(0) = -inf).
    let u1: f64 = loop {
        let u: f64 = rng.random();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal distribution parameterized by the *median* (`exp(mu)`) and
/// the shape `sigma` (std-dev of the underlying normal, in ln-space).
///
/// Generators jitter Table 2 centroids with this: the centroid is the
/// median, `sigma` controls within-cluster spread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// From median and ln-space sigma. `median` must be > 0 and finite;
    /// `sigma` must be >= 0 and finite.
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(
            median > 0.0 && median.is_finite(),
            "median must be positive"
        );
        assert!(
            sigma >= 0.0 && sigma.is_finite(),
            "sigma must be non-negative"
        );
        LogNormal {
            mu: median.ln(),
            sigma,
        }
    }

    /// Sample one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    /// The distribution median `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// The distribution mean `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Exponential distribution with the given rate `lambda` (mean `1/lambda`).
/// Used for Poisson inter-arrival gaps inside an hour bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// From rate; `lambda` must be positive and finite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda > 0.0 && lambda.is_finite(),
            "lambda must be positive"
        );
        Exponential { lambda }
    }

    /// Sample one value via inverse transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = loop {
            let u: f64 = rng.random();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        -u.ln() / self.lambda
    }

    /// Distribution mean `1/lambda`.
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }
}

/// Sample a Poisson count with mean `lambda`.
///
/// Knuth's product method for small `lambda`, normal approximation above
/// 30 (hour buckets in big workloads can have thousands of arrivals; exact
/// sampling there is needless work).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let x = lambda + lambda.sqrt() * standard_normal(rng);
        return if x < 0.0 { 0 } else { x.round() as u64 };
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Bounded Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(k) ∝ k^-s`.
///
/// Uses Devroye's rejection method, which is O(1) per sample for any `n`,
/// so the file population may grow while sampling stays cheap. The paper's
/// measured exponent is ≈ 5/6 across all workloads (Fig. 2) — "Zipf-like
/// distributions of the same shape".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: u64,
    s: f64,
}

impl Zipf {
    /// Zipf over `1..=n` with exponent `s` (`n >= 1`, `s > 0`, `s != 1` is
    /// not required — the rejection sampler handles s = 1 too).
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1, "population must be non-empty");
        assert!(s > 0.0 && s.is_finite(), "exponent must be positive");
        Zipf { n, s }
    }

    /// Sample one rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 1 {
            return 1;
        }
        // Devroye, "Non-Uniform Random Variate Generation", ch. X.6:
        // rejection from a dominating curve built on the integral of x^-s.
        let n = self.n as f64;
        let s = self.s;
        // H(x) = integral of x^-s: (x^(1-s) - 1) / (1-s) for s != 1, ln x else.
        let h = |x: f64| -> f64 {
            if (s - 1.0).abs() < 1e-12 {
                x.ln()
            } else {
                (x.powf(1.0 - s) - 1.0) / (1.0 - s)
            }
        };
        let h_inv = |y: f64| -> f64 {
            if (s - 1.0).abs() < 1e-12 {
                y.exp()
            } else {
                (1.0 + y * (1.0 - s)).powf(1.0 / (1.0 - s))
            }
        };
        let h_max = h(n + 0.5);
        let h_min = h(0.5);
        loop {
            let u: f64 = rng.random();
            let y = h_min + u * (h_max - h_min);
            let x = h_inv(y);
            let k = (x + 0.5).floor().clamp(1.0, n);
            // Accept with probability proportional to the ratio of the true
            // pmf at k to the dominating density mass over [k-1/2, k+1/2].
            let ratio = (k.powf(-s)) / ((h(k + 0.5) - h(k - 0.5)).max(f64::MIN_POSITIVE));
            let accept = ratio / dominating_peak(s);
            if rng.random::<f64>() < accept {
                return k as u64;
            }
        }
    }

    /// Population size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }
}

/// Upper bound of `k^-s / (H(k+1/2) - H(k-1/2))` over `k >= 1`, used to
/// normalize the acceptance ratio to (0, 1]. The ratio is maximized at
/// k = 1; evaluate there.
fn dominating_peak(s: f64) -> f64 {
    let h = |x: f64| -> f64 {
        if (s - 1.0).abs() < 1e-12 {
            x.ln()
        } else {
            (x.powf(1.0 - s) - 1.0) / (1.0 - s)
        }
    };
    1.0 / (h(1.5) - h(0.5))
}

/// Weighted categorical sampler over `0..weights.len()` using cumulative
/// sums + binary search. Rejects non-finite and negative weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    cumulative: Vec<f64>,
    total: f64,
}

impl Categorical {
    /// Build from non-negative weights; at least one must be positive.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be finite and >= 0");
            total += w;
            cumulative.push(total);
        }
        assert!(total > 0.0, "at least one weight must be positive");
        Categorical { cumulative, total }
    }

    /// Sample one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.random::<f64>() * self.total;
        match self
            .cumulative
            .binary_search_by(|probe| probe.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false (construction requires at least one weight).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Probability of category `i`.
    pub fn probability(&self, i: usize) -> f64 {
        let prev = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        (self.cumulative[i] - prev) / self.total
    }
}

/// Piecewise-linear empirical distribution built from (value, cdf) knots —
/// the "the trace is the model" sampler the paper calls for in §7
/// ("Empirical models").
///
/// Knots must have non-decreasing values and strictly increasing CDF from
/// ~0 to 1. Sampling inverts the CDF with linear interpolation between
/// knots; values below the first knot clamp to it.
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    values: Vec<f64>,
    cdf: Vec<f64>,
}

impl Empirical {
    /// Build from knots `(value, cumulative_probability)`.
    pub fn from_knots(knots: &[(f64, f64)]) -> Self {
        assert!(knots.len() >= 2, "need at least two knots");
        let mut values = Vec::with_capacity(knots.len());
        let mut cdf = Vec::with_capacity(knots.len());
        for &(v, p) in knots {
            assert!(v.is_finite(), "values must be finite");
            assert!((0.0..=1.0).contains(&p), "cdf must lie in [0,1]");
            if let Some(&last_v) = values.last() {
                assert!(v >= last_v, "values must be non-decreasing");
            }
            if let Some(&last_p) = cdf.last() {
                assert!(p > last_p, "cdf must be strictly increasing");
            }
            values.push(v);
            cdf.push(p);
        }
        assert!(
            (cdf.last().unwrap() - 1.0).abs() < 1e-9,
            "last knot must have cdf = 1"
        );
        Empirical { values, cdf }
    }

    /// Build from a raw sample (the empirical CDF of the data itself).
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let n = sorted.len();
        if n == 1 {
            return Empirical::from_knots(&[(sorted[0], 0.5), (sorted[0] + 1e-12, 1.0)]);
        }
        let mut knots: Vec<(f64, f64)> = Vec::with_capacity(n);
        for (i, &v) in sorted.iter().enumerate() {
            let p = (i + 1) as f64 / n as f64;
            // Collapse duplicate values onto the highest cdf for that value.
            if let Some(last) = knots.last_mut() {
                if (last.0 - v).abs() < f64::EPSILON {
                    last.1 = p;
                    continue;
                }
            }
            knots.push((v, p));
        }
        if knots.len() == 1 {
            let v = knots[0].0;
            return Empirical::from_knots(&[(v, 0.5), (v + v.abs().max(1.0) * 1e-12, 1.0)]);
        }
        // Anchor the left edge slightly below the minimum so inversion of
        // small u returns ~min rather than panicking.
        Empirical {
            values: knots.iter().map(|k| k.0).collect(),
            cdf: knots.iter().map(|k| k.1).collect(),
        }
    }

    /// Invert the CDF at probability `p` (clamped into `[0, 1]`).
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        if p <= self.cdf[0] {
            return self.values[0];
        }
        let idx = match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&p).expect("finite"))
        {
            Ok(i) => return self.values[i],
            Err(i) => i,
        };
        if idx >= self.cdf.len() {
            return *self.values.last().unwrap();
        }
        let (p0, p1) = (self.cdf[idx - 1], self.cdf[idx]);
        let (v0, v1) = (self.values[idx - 1], self.values[idx]);
        let t = (p - p0) / (p1 - p0);
        v0 + t * (v1 - v0)
    }

    /// Sample one value by inverse transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.quantile(rng.random())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_median_recovery() {
        let mut r = rng();
        let d = LogNormal::from_median(1000.0, 0.7);
        let mut samples: Vec<f64> = (0..10_001).map(|_| d.sample(&mut r)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[5000];
        assert!(
            (median / 1000.0 - 1.0).abs() < 0.1,
            "sample median {median} vs 1000"
        );
        assert!((d.mean() - (1000f64.ln() + 0.245).exp()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "median must be positive")]
    fn lognormal_rejects_zero_median() {
        LogNormal::from_median(0.0, 1.0);
    }

    #[test]
    fn exponential_mean_recovery() {
        let mut r = rng();
        let d = Exponential::new(0.25);
        let n = 20_000;
        let mean = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn poisson_small_and_large_lambda() {
        let mut r = rng();
        for &lambda in &[0.5, 5.0, 200.0] {
            let n = 10_000;
            let mean = (0..n).map(|_| poisson(&mut r, lambda) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.08,
                "lambda {lambda}: mean {mean}"
            );
        }
        assert_eq!(poisson(&mut r, 0.0), 0);
        assert_eq!(poisson(&mut r, -3.0), 0);
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let mut r = rng();
        let z = Zipf::new(1000, 5.0 / 6.0);
        let n = 50_000;
        let mut counts = vec![0u64; 1001];
        for _ in 0..n {
            let k = z.sample(&mut r);
            assert!((1..=1000).contains(&k));
            counts[k as usize] += 1;
        }
        // Rank 1 must be the most frequent, and far above the tail.
        let max_rank = counts
            .iter()
            .enumerate()
            .skip(1)
            .max_by_key(|(_, &c)| c)
            .unwrap()
            .0;
        assert_eq!(max_rank, 1);
        assert!(counts[1] > 20 * counts[900].max(1));
    }

    #[test]
    fn zipf_exponent_recovered_by_regression() {
        // Frequency of rank k should be ∝ k^-s; fit log(freq) ~ log(rank).
        let mut r = rng();
        let s_true = 5.0 / 6.0;
        let z = Zipf::new(500, s_true);
        let mut counts = vec![0u64; 501];
        for _ in 0..200_000 {
            counts[z.sample(&mut r) as usize] += 1;
        }
        let pts: Vec<(f64, f64)> = (1..=100)
            .filter(|&k| counts[k] > 0)
            .map(|k| ((k as f64).ln(), (counts[k] as f64).ln()))
            .collect();
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        assert!(
            (slope + s_true).abs() < 0.08,
            "fitted slope {slope}, expected {}",
            -s_true
        );
    }

    #[test]
    fn zipf_handles_singleton_and_s_equal_one() {
        let mut r = rng();
        assert_eq!(Zipf::new(1, 0.9).sample(&mut r), 1);
        let z = Zipf::new(100, 1.0);
        for _ in 0..1000 {
            assert!((1..=100).contains(&z.sample(&mut r)));
        }
    }

    #[test]
    fn categorical_respects_weights() {
        let mut r = rng();
        let c = Categorical::new(&[8.0, 1.0, 1.0]);
        let n = 30_000;
        let mut counts = [0u64; 3];
        for _ in 0..n {
            counts[c.sample(&mut r)] += 1;
        }
        let f0 = counts[0] as f64 / n as f64;
        assert!((f0 - 0.8).abs() < 0.02, "f0 {f0}");
        assert!((c.probability(0) - 0.8).abs() < 1e-12);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn categorical_zero_weight_never_sampled() {
        let mut r = rng();
        let c = Categorical::new(&[1.0, 0.0, 1.0]);
        for _ in 0..5_000 {
            assert_ne!(c.sample(&mut r), 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one weight must be positive")]
    fn categorical_rejects_all_zero() {
        Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    fn empirical_quantile_interpolates() {
        let e = Empirical::from_knots(&[(0.0, 0.1), (10.0, 0.5), (100.0, 1.0)]);
        assert_eq!(e.quantile(0.0), 0.0);
        assert_eq!(e.quantile(0.1), 0.0);
        assert!((e.quantile(0.3) - 5.0).abs() < 1e-9);
        assert!((e.quantile(0.75) - 55.0).abs() < 1e-9);
        assert_eq!(e.quantile(1.0), 100.0);
        assert_eq!(e.quantile(2.0), 100.0);
    }

    #[test]
    fn empirical_from_samples_recovers_range() {
        let data = [3.0, 1.0, 2.0, 2.0, 5.0];
        let e = Empirical::from_samples(&data);
        let q_max = e.quantile(1.0);
        assert_eq!(q_max, 5.0);
        assert!(e.quantile(0.0) <= 1.0 + 1e-9);
        let mut r = rng();
        for _ in 0..1000 {
            let v = e.sample(&mut r);
            assert!((1.0..=5.0).contains(&v), "sample {v} out of data range");
        }
    }

    #[test]
    fn empirical_single_sample_degenerates_gracefully() {
        let e = Empirical::from_samples(&[7.0]);
        let mut r = rng();
        for _ in 0..100 {
            assert!((e.sample(&mut r) - 7.0).abs() < 1e-6);
        }
    }

    #[test]
    fn determinism_same_seed_same_stream() {
        let d = LogNormal::from_median(50.0, 1.0);
        let a: Vec<f64> = (0..10)
            .map(|_| d.sample(&mut StdRng::seed_from_u64(9)))
            .collect();
        let b: Vec<f64> = (0..10)
            .map(|_| d.sample(&mut StdRng::seed_from_u64(9)))
            .collect();
        assert_eq!(a, b);
    }
}
