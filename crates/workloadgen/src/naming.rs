//! Job-name vocabularies per workload, calibrated to Figure 10.
//!
//! §6.1 groups jobs by the first word of their names, which reveals the
//! framework mix (Hive / Pig / Oozie / native) and the dominant query
//! operators (`insert`, `select`; `from` appears heavily only in FB-2009).
//! Weights below are digitized approximations of the Fig. 10 bar charts —
//! exact per-word fractions are not published, but the qualitative facts
//! we reproduce and test are:
//!
//! * the top handful of words cover a dominant majority of jobs;
//! * at most two frameworks dominate each workload;
//! * Hive activity is led by `insert`/`select`, with `from` only in FB-2009;
//! * FB-2010 carries **no** job names at all.

use crate::dist::Categorical;
use rand::Rng;
use swim_trace::Framework;

/// One vocabulary entry: a first word, its framework, and its share of jobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NameEntry {
    /// First word of the generated job name.
    pub word: &'static str,
    /// Framework the word implies.
    pub framework: Framework,
    /// Relative weight (share of jobs).
    pub weight: f64,
    /// Relative per-job data-size multiplier: words like `insert` or
    /// `etl` mark data-heavy jobs (Fig. 10 middle/bottom panels show the
    /// by-bytes ordering differs from by-jobs). The generator uses this to
    /// bias large job types towards data-heavy words.
    pub io_bias: f64,
}

const fn entry(word: &'static str, framework: Framework, weight: f64, io_bias: f64) -> NameEntry {
    NameEntry {
        word,
        framework,
        weight,
        io_bias,
    }
}

/// A per-workload name vocabulary.
#[derive(Debug, Clone)]
pub struct NameVocabulary {
    entries: Vec<NameEntry>,
    /// Sampler over entries, weighted by job share.
    by_jobs: Categorical,
    /// Sampler over entries, weighted by job share × io_bias (used for
    /// data-heavy job types).
    by_io: Categorical,
    seq: u64,
}

impl NameVocabulary {
    /// Build from entries (weights need not sum to 1).
    pub fn new(entries: Vec<NameEntry>) -> Self {
        assert!(!entries.is_empty(), "vocabulary must not be empty");
        let w_jobs: Vec<f64> = entries.iter().map(|e| e.weight).collect();
        let w_io: Vec<f64> = entries.iter().map(|e| e.weight * e.io_bias).collect();
        NameVocabulary {
            by_jobs: Categorical::new(&w_jobs),
            by_io: Categorical::new(&w_io),
            entries,
            seq: 0,
        }
    }

    /// An empty-name vocabulary modelling FB-2010's missing name field.
    pub fn unnamed() -> Self {
        NameVocabulary::new(vec![entry("", Framework::Native, 1.0, 1.0)])
    }

    /// `true` iff this vocabulary produces empty names.
    pub fn is_unnamed(&self) -> bool {
        self.entries.len() == 1 && self.entries[0].word.is_empty()
    }

    /// The vocabulary entries.
    pub fn entries(&self) -> &[NameEntry] {
        &self.entries
    }

    /// Sample a (name, framework) pair. `data_heavy` selects the
    /// io-weighted sampler, used for job types whose centroid moves ≥ 1 GB.
    pub fn sample<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        data_heavy: bool,
    ) -> (String, Framework) {
        let idx = if data_heavy {
            self.by_io.sample(rng)
        } else {
            self.by_jobs.sample(rng)
        };
        let e = self.entries[idx];
        if e.word.is_empty() {
            return (String::new(), e.framework);
        }
        self.seq += 1;
        // Suffix mimics framework-generated names ("insert_2041", staged ids).
        (format!("{}_{}", e.word, self.seq), e.framework)
    }
}

/// FB-2009 vocabulary: native `ad` pipeline dominates by jobs (≈44 %),
/// Hive `insert` ≈12 %; `from` is rare by jobs but carries ≈27 % of I/O
/// and ≈34 % of task-time (encoded through a large `io_bias`).
pub fn fb2009() -> NameVocabulary {
    NameVocabulary::new(vec![
        entry("ad", Framework::Native, 0.44, 0.2),
        entry("insert", Framework::Hive, 0.12, 1.5),
        entry("from", Framework::Hive, 0.04, 12.0),
        entry("select", Framework::Hive, 0.08, 0.5),
        entry("etl", Framework::Native, 0.05, 3.0),
        entry("stage", Framework::Native, 0.05, 1.0),
        entry("click", Framework::Native, 0.06, 1.0),
        entry("hourly", Framework::Native, 0.06, 0.8),
        entry("pipeline", Framework::Oozie, 0.04, 0.6),
        entry("report", Framework::Native, 0.06, 0.4),
    ])
}

/// CC-a vocabulary: Pig-dominated with Oozie launchers.
pub fn cc_a() -> NameVocabulary {
    NameVocabulary::new(vec![
        entry("piglatin", Framework::Pig, 0.42, 1.0),
        entry("oozie", Framework::Oozie, 0.20, 0.3),
        entry("insert", Framework::Hive, 0.12, 2.5),
        entry("select", Framework::Hive, 0.10, 0.6),
        entry("metrodataextractor", Framework::Native, 0.06, 4.0),
        entry("hyperlocaldataextractor", Framework::Native, 0.04, 3.0),
        entry("snapshot", Framework::Native, 0.06, 1.0),
    ])
}

/// CC-b vocabulary: Pig + Hive, with the `sywr`/`flow` native pipelines.
pub fn cc_b() -> NameVocabulary {
    NameVocabulary::new(vec![
        entry("piglatin", Framework::Pig, 0.38, 1.2),
        entry("insert", Framework::Hive, 0.18, 2.0),
        entry("select", Framework::Hive, 0.14, 0.5),
        entry("flow", Framework::Native, 0.12, 1.0),
        entry("sywr", Framework::Native, 0.08, 0.8),
        entry("tr", Framework::Native, 0.06, 2.0),
        entry("distcp", Framework::Native, 0.04, 4.0),
    ])
}

/// CC-c vocabulary: Oozie + Hive EDW migration (`edwsequence`, `etl`).
pub fn cc_c() -> NameVocabulary {
    NameVocabulary::new(vec![
        entry("oozie", Framework::Oozie, 0.30, 0.3),
        entry("insert", Framework::Hive, 0.22, 2.0),
        entry("select", Framework::Hive, 0.16, 0.6),
        entry("edwsequence", Framework::Native, 0.12, 2.5),
        entry("queryresult", Framework::Native, 0.08, 0.5),
        entry("ajax", Framework::Native, 0.05, 0.3),
        entry("etl", Framework::Native, 0.07, 3.5),
    ])
}

/// CC-d vocabulary: Pig with retail-flavoured natives (`twitch`,
/// `snapshot`, `importjob`, `edw`).
pub fn cc_d() -> NameVocabulary {
    NameVocabulary::new(vec![
        entry("piglatin", Framework::Pig, 0.34, 1.0),
        entry("select", Framework::Hive, 0.18, 0.5),
        entry("twitch", Framework::Native, 0.12, 1.2),
        entry("snapshot", Framework::Native, 0.10, 1.5),
        entry("importjob", Framework::Native, 0.08, 3.0),
        entry("edw", Framework::Native, 0.08, 2.5),
        entry("si", Framework::Native, 0.05, 0.8),
        entry("tr", Framework::Native, 0.05, 1.5),
    ])
}

/// CC-e vocabulary: Hive-led with retail item/search pipelines.
pub fn cc_e() -> NameVocabulary {
    NameVocabulary::new(vec![
        entry("insert", Framework::Hive, 0.30, 1.8),
        entry("select", Framework::Hive, 0.20, 0.5),
        entry("piglatin", Framework::Pig, 0.14, 1.0),
        entry("iteminquiry", Framework::Native, 0.10, 0.6),
        entry("search", Framework::Native, 0.08, 0.5),
        entry("item", Framework::Native, 0.06, 0.8),
        entry("esb", Framework::Native, 0.06, 1.0),
        entry("edw", Framework::Native, 0.06, 2.5),
    ])
}

/// FB-2010: the trace carries no job names (§6.1, Fig. 10 caption).
pub fn fb2010() -> NameVocabulary {
    NameVocabulary::unnamed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn fb2009_word_shares_match_calibration() {
        let mut v = fb2009();
        let mut rng = StdRng::seed_from_u64(20);
        let n = 40_000;
        let mut counts: HashMap<String, u64> = HashMap::new();
        for _ in 0..n {
            let (name, _) = v.sample(&mut rng, false);
            let word = name.split('_').next().unwrap().to_owned();
            *counts.entry(word).or_default() += 1;
        }
        let ad = counts["ad"] as f64 / n as f64;
        let insert = counts["insert"] as f64 / n as f64;
        assert!((ad - 0.44).abs() < 0.02, "ad share {ad}");
        assert!((insert - 0.12).abs() < 0.02, "insert share {insert}");
    }

    #[test]
    fn data_heavy_sampling_prefers_high_io_bias_words() {
        let mut v = fb2009();
        let mut rng = StdRng::seed_from_u64(21);
        let n = 40_000;
        let mut from_heavy = 0u64;
        let mut from_light = 0u64;
        for _ in 0..n {
            if v.sample(&mut rng, true).0.starts_with("from") {
                from_heavy += 1;
            }
            if v.sample(&mut rng, false).0.starts_with("from") {
                from_light += 1;
            }
        }
        assert!(
            from_heavy > 3 * from_light.max(1),
            "heavy {from_heavy} vs light {from_light}"
        );
    }

    #[test]
    fn two_frameworks_dominate_each_workload() {
        // §6.1: "for all workloads, two frameworks account for a dominant
        // majority of jobs".
        for (label, vocab) in [
            ("FB-2009", fb2009()),
            ("CC-a", cc_a()),
            ("CC-b", cc_b()),
            ("CC-c", cc_c()),
            ("CC-d", cc_d()),
            ("CC-e", cc_e()),
        ] {
            let mut shares: HashMap<Framework, f64> = HashMap::new();
            let total: f64 = vocab.entries().iter().map(|e| e.weight).sum();
            for e in vocab.entries() {
                *shares.entry(e.framework).or_default() += e.weight / total;
            }
            let mut sorted: Vec<f64> = shares.values().copied().collect();
            sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let top2: f64 = sorted.iter().take(2).sum();
            assert!(top2 > 0.55, "{label}: top-2 framework share {top2}");
        }
    }

    #[test]
    fn from_appears_only_in_fb2009() {
        for (label, vocab) in [
            ("CC-a", cc_a()),
            ("CC-b", cc_b()),
            ("CC-c", cc_c()),
            ("CC-d", cc_d()),
            ("CC-e", cc_e()),
        ] {
            assert!(
                vocab.entries().iter().all(|e| e.word != "from"),
                "{label} must not contain 'from'"
            );
        }
        assert!(fb2009().entries().iter().any(|e| e.word == "from"));
    }

    #[test]
    fn fb2010_is_unnamed() {
        let mut v = fb2010();
        assert!(v.is_unnamed());
        let mut rng = StdRng::seed_from_u64(22);
        let (name, fw) = v.sample(&mut rng, false);
        assert!(name.is_empty());
        assert_eq!(fw, Framework::Native);
    }

    #[test]
    fn names_are_unique_via_sequence_suffix() {
        let mut v = cc_b();
        let mut rng = StdRng::seed_from_u64(23);
        let a = v.sample(&mut rng, false).0;
        let b = v.sample(&mut rng, false).0;
        assert_ne!(a, b);
    }

    #[test]
    fn first_word_survives_trace_normalization() {
        // Generated names must group correctly under Job::name_first_word.
        let mut v = cc_c();
        let mut rng = StdRng::seed_from_u64(24);
        for _ in 0..100 {
            let (name, _) = v.sample(&mut rng, false);
            let word = swim_trace::job::first_word(&name).unwrap();
            assert!(v.entries().iter().any(|e| e.word == word), "word {word}");
        }
    }
}
