//! Per-workload calibration profiles for the seven traces of the study.
//!
//! Each [`WorkloadProfile`] bundles:
//!
//! * Table 1 scale: machines, trace length, total job count;
//! * Table 2 job-type mixture: every published cluster centroid with its
//!   population count and label;
//! * Figure 8-calibrated arrival parameters (burstiness band, diurnal);
//! * Figure 5/6-calibrated access model (re-access fractions, locality);
//! * Figure 10-calibrated name vocabulary;
//! * the data availability matrix of §4.2/§6.1 (which workloads ship
//!   paths and names).
//!
//! Data sizes and task-times below are transcriptions of Table 2 of the
//! paper; counts are the `# Jobs` column. Where the paper gives a range
//! (CC-d machines "400–500"), the midpoint is used.

use crate::arrival::ArrivalModel;
use crate::files::AccessModel;
use crate::jobtypes::JobTypeProfile;
use crate::naming::{self, NameVocabulary};
use swim_trace::trace::WorkloadKind;
use swim_trace::{DataSize, Dur};

/// Whether a trace exposes input/output path fields (§4.2's availability
/// matrix: "FB-2009 and CC-a do not contain path names; FB-2010 contains
/// path names for input only").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathAvailability {
    /// Input paths present.
    pub input: bool,
    /// Output paths present.
    pub output: bool,
}

/// Full calibration for one workload.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    /// Which of the seven workloads.
    pub kind: WorkloadKind,
    /// Cluster machine count (Table 1).
    pub machines: u32,
    /// Trace length in days (Table 1).
    pub length_days: f64,
    /// Total jobs in the original trace (Table 1).
    pub total_jobs: u64,
    /// Table 2 job-type rows.
    pub job_types: Vec<JobTypeProfile>,
    /// Arrival process parameters (Fig. 7/8 calibration).
    pub arrival: ArrivalParams,
    /// File access model (Fig. 2/5/6 calibration).
    pub access: AccessModel,
    /// Path availability matrix entry.
    pub paths: PathAvailability,
    /// `true` iff job names are present (false only for FB-2010).
    pub has_names: bool,
}

/// Arrival-shape parameters; combined with trace scale to build an
/// [`ArrivalModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalParams {
    /// Diurnal amplitude `[0,1)`.
    pub diurnal_amplitude: f64,
    /// Peak hour of day.
    pub peak_hour: f64,
    /// Burst log-sigma (Fig. 8 band: FB-2010 ≈ 9:1 → small sigma,
    /// CC-b ≈ 100:1+ → large sigma).
    pub burst_sigma: f64,
}

impl WorkloadProfile {
    /// The profile's name vocabulary (fresh sampler state).
    pub fn vocabulary(&self) -> NameVocabulary {
        match self.kind {
            WorkloadKind::CcA => naming::cc_a(),
            WorkloadKind::CcB => naming::cc_b(),
            WorkloadKind::CcC => naming::cc_c(),
            WorkloadKind::CcD => naming::cc_d(),
            WorkloadKind::CcE => naming::cc_e(),
            WorkloadKind::Fb2009 => naming::fb2009(),
            WorkloadKind::Fb2010 => naming::fb2010(),
            WorkloadKind::Custom(_) => NameVocabulary::unnamed(),
        }
    }

    /// Arrival model for a trace scaled to `scale` × the original job count.
    pub fn arrival_model(&self, scale: f64) -> ArrivalModel {
        let hours = self.length_days * 24.0;
        ArrivalModel {
            jobs_per_hour: self.total_jobs as f64 * scale / hours,
            diurnal_amplitude: self.arrival.diurnal_amplitude,
            peak_hour: self.arrival.peak_hour,
            burst_sigma: self.arrival.burst_sigma,
        }
    }

    /// Profile for any of the seven paper workloads.
    pub fn for_kind(kind: &WorkloadKind) -> Option<WorkloadProfile> {
        match kind {
            WorkloadKind::CcA => Some(cc_a()),
            WorkloadKind::CcB => Some(cc_b()),
            WorkloadKind::CcC => Some(cc_c()),
            WorkloadKind::CcD => Some(cc_d()),
            WorkloadKind::CcE => Some(cc_e()),
            WorkloadKind::Fb2009 => Some(fb2009()),
            WorkloadKind::Fb2010 => Some(fb2010()),
            WorkloadKind::Custom(_) => None,
        }
    }

    /// All seven profiles in Table 1 order.
    pub fn paper_seven() -> Vec<WorkloadProfile> {
        vec![cc_a(), cc_b(), cc_c(), cc_d(), cc_e(), fb2009(), fb2010()]
    }
}

// Shorthand constructors keeping the table rows readable.
const fn b(n: u64) -> DataSize {
    DataSize::from_bytes(n)
}
const fn kb(n: u64) -> DataSize {
    DataSize::from_kb(n)
}
const fn mb(n: u64) -> DataSize {
    DataSize::from_mb(n)
}
const fn gb(n: u64) -> DataSize {
    DataSize::from_gb(n)
}
const fn tb(n: u64) -> DataSize {
    DataSize::from_tb(n)
}
const fn secs(n: u64) -> Dur {
    Dur::from_secs(n)
}
const fn mins(n: u64) -> Dur {
    Dur::from_secs(n * 60)
}
const fn hrs(n: u64) -> Dur {
    Dur::from_secs(n * 3600)
}
const ZERO: DataSize = DataSize::ZERO;
const ZD: Dur = Dur::ZERO;
#[allow(clippy::too_many_arguments)]
const fn row(
    count: u64,
    input: DataSize,
    shuffle: DataSize,
    output: DataSize,
    duration: Dur,
    map_time: Dur,
    reduce_time: Dur,
    label: &'static str,
) -> JobTypeProfile {
    JobTypeProfile::new(
        count,
        input,
        shuffle,
        output,
        duration,
        map_time,
        reduce_time,
        label,
    )
}

/// CC-a: e-commerce customer, <100 machines, 1 month, 5 759 jobs, 80 TB.
pub fn cc_a() -> WorkloadProfile {
    WorkloadProfile {
        kind: WorkloadKind::CcA,
        machines: 60,
        length_days: 30.0,
        total_jobs: 5_759,
        job_types: vec![
            row(
                5_525,
                mb(51),
                ZERO,
                mb(4),
                secs(39),
                secs(33),
                ZD,
                "Small jobs",
            ),
            row(
                194,
                gb(14),
                gb(12),
                gb(10),
                mins(35),
                secs(65_100),
                secs(15_410),
                "Transform",
            ),
            row(
                31,
                tb(1) + gb(200),
                ZERO,
                gb(27),
                hrs(2) + mins(30),
                secs(437_615),
                ZD,
                "Map only, huge",
            ),
            row(
                9,
                gb(273),
                gb(185),
                mb(21),
                hrs(4) + mins(30),
                secs(191_351),
                secs(831_181),
                "Transform and aggregate",
            ),
        ],
        arrival: ArrivalParams {
            diurnal_amplitude: 0.3,
            peak_hour: 14.0,
            burst_sigma: 1.2,
        },
        // CC-a ships no path names.
        access: AccessModel::paper_defaults(0.25, 0.15),
        paths: PathAvailability {
            input: false,
            output: false,
        },
        has_names: true,
    }
}

/// CC-b: telecom customer, 300 machines, 9 days, 22 974 jobs, 600 TB.
pub fn cc_b() -> WorkloadProfile {
    WorkloadProfile {
        kind: WorkloadKind::CcB,
        machines: 300,
        length_days: 9.0,
        total_jobs: 22_974,
        job_types: vec![
            row(
                21_210,
                kb(4) + b(600),
                ZERO,
                kb(4) + b(700),
                secs(23),
                secs(11),
                ZD,
                "Small jobs",
            ),
            row(
                1_565,
                gb(41),
                gb(10),
                gb(2) + mb(100),
                mins(4),
                secs(15_837),
                secs(12_392),
                "Transform, small",
            ),
            row(
                165,
                gb(123),
                gb(43),
                gb(13),
                mins(6),
                secs(36_265),
                secs(31_389),
                "Transform, medium",
            ),
            row(
                31,
                tb(4) + gb(700),
                mb(374),
                mb(24),
                mins(9),
                secs(876_786),
                secs(705),
                "Aggregate and transform",
            ),
            row(
                3,
                gb(600),
                gb(1) + mb(600),
                mb(550),
                hrs(6) + mins(45),
                secs(3_092_977),
                secs(230_976),
                "Aggregate",
            ),
        ],
        arrival: ArrivalParams {
            diurnal_amplitude: 0.2,
            peak_hour: 11.0,
            burst_sigma: 1.6,
        },
        access: AccessModel::paper_defaults(0.25, 0.15),
        paths: PathAvailability {
            input: true,
            output: true,
        },
        has_names: true,
    }
}

/// CC-c: 700 machines, 1 month, 21 030 jobs, 18 PB.
pub fn cc_c() -> WorkloadProfile {
    WorkloadProfile {
        kind: WorkloadKind::CcC,
        machines: 700,
        length_days: 30.0,
        total_jobs: 21_030,
        job_types: vec![
            row(
                19_975,
                gb(5) + mb(700),
                gb(3),
                mb(200),
                mins(4),
                secs(10_933),
                secs(6_586),
                "Small jobs",
            ),
            row(
                477,
                tb(1),
                tb(4) + gb(200),
                gb(920),
                mins(47),
                secs(1_927_432),
                secs(462_070),
                "Transform, light reduce",
            ),
            row(
                246,
                gb(887),
                gb(57),
                mb(22),
                hrs(4) + mins(14),
                secs(569_391),
                secs(158_930),
                "Aggregate",
            ),
            row(
                197,
                tb(1) + gb(100),
                tb(3) + gb(700),
                tb(3) + gb(700),
                mins(53),
                secs(1_895_403),
                secs(886_347),
                "Transform, heavy reduce",
            ),
            row(
                105,
                gb(32),
                gb(37),
                gb(2) + mb(400),
                hrs(2) + mins(11),
                secs(14_865_972),
                secs(369_846),
                "Aggregate, large",
            ),
            row(
                23,
                tb(3) + gb(700),
                gb(562),
                gb(37),
                hrs(17),
                secs(9_779_062),
                secs(14_989_871),
                "Long jobs",
            ),
            row(
                7,
                tb(220),
                gb(18),
                gb(2) + mb(800),
                hrs(5) + mins(15),
                secs(66_839_710),
                secs(758_957),
                "Aggregate, huge",
            ),
        ],
        arrival: ArrivalParams {
            diurnal_amplitude: 0.25,
            peak_hour: 13.0,
            burst_sigma: 1.3,
        },
        // CC-c shows the highest re-access fraction (≈78 %, Fig. 6).
        access: AccessModel::paper_defaults(0.48, 0.30),
        paths: PathAvailability {
            input: true,
            output: true,
        },
        has_names: true,
    }
}

/// CC-d: 400–500 machines, 2+ months, 13 283 jobs, 8 PB.
pub fn cc_d() -> WorkloadProfile {
    WorkloadProfile {
        kind: WorkloadKind::CcD,
        machines: 450,
        length_days: 66.0,
        total_jobs: 13_283,
        job_types: vec![
            row(
                12_736,
                gb(3) + mb(100),
                mb(753),
                mb(231),
                secs(67),
                secs(7_376),
                secs(5_085),
                "Small jobs",
            ),
            row(
                214,
                gb(633),
                tb(2) + gb(900),
                gb(332),
                mins(11),
                secs(544_433),
                secs(352_692),
                "Expand and aggregate",
            ),
            row(
                162,
                gb(5) + mb(300),
                tb(6) + gb(100),
                gb(33),
                mins(23),
                secs(2_011_911),
                secs(910_673),
                "Transform and aggregate",
            ),
            row(
                128,
                tb(1),
                tb(6) + gb(200),
                tb(6) + gb(700),
                mins(20),
                secs(847_286),
                secs(900_395),
                "Expand and Transform",
            ),
            row(
                43,
                gb(17),
                gb(4),
                gb(1) + mb(700),
                mins(36),
                secs(6_259_747),
                secs(7_067),
                "Aggregate",
            ),
        ],
        arrival: ArrivalParams {
            diurnal_amplitude: 0.25,
            peak_hour: 10.0,
            burst_sigma: 1.4,
        },
        access: AccessModel::paper_defaults(0.45, 0.30),
        paths: PathAvailability {
            input: true,
            output: true,
        },
        has_names: true,
    }
}

/// CC-e: 100 machines, 9 days, 10 790 jobs, 590 TB.
pub fn cc_e() -> WorkloadProfile {
    WorkloadProfile {
        kind: WorkloadKind::CcE,
        machines: 100,
        length_days: 9.0,
        total_jobs: 10_790,
        job_types: vec![
            row(
                10_243,
                mb(8) + kb(100),
                ZERO,
                kb(970),
                secs(18),
                secs(15),
                ZD,
                "Small jobs",
            ),
            row(
                452,
                gb(166),
                gb(180),
                gb(118),
                mins(31),
                secs(35_606),
                secs(38_194),
                "Transform, large",
            ),
            row(
                68,
                gb(543),
                gb(502),
                gb(166),
                hrs(2),
                secs(115_077),
                secs(108_745),
                "Transform, very large",
            ),
            row(
                20,
                tb(3),
                ZERO,
                b(200),
                mins(5),
                secs(137_077),
                ZD,
                "Map only summary",
            ),
            // The published centroid shows a small shuffle with zero reduce
            // task-time; the generator models it as a reduce stage whose
            // slot-time rounds to zero.
            row(
                7,
                tb(6) + gb(700),
                gb(2) + mb(300),
                tb(6) + gb(700),
                hrs(3) + mins(47),
                secs(335_807),
                secs(60),
                "Map only transform",
            ),
        ],
        arrival: ArrivalParams {
            diurnal_amplitude: 0.5,
            peak_hour: 15.0,
            burst_sigma: 1.1,
        },
        access: AccessModel::paper_defaults(0.42, 0.28),
        paths: PathAvailability {
            input: true,
            output: true,
        },
        has_names: true,
    }
}

/// FB-2009: 600 machines, 6 months, 1 129 193 jobs, 9.4 PB.
pub fn fb2009() -> WorkloadProfile {
    WorkloadProfile {
        kind: WorkloadKind::Fb2009,
        machines: 600,
        length_days: 180.0,
        total_jobs: 1_129_193,
        job_types: vec![
            row(
                1_081_918,
                kb(21),
                ZERO,
                kb(871),
                secs(32),
                secs(20),
                ZD,
                "Small jobs",
            ),
            row(
                37_038,
                kb(381),
                ZERO,
                gb(1) + mb(900),
                mins(21),
                secs(6_079),
                ZD,
                "Load data, fast",
            ),
            row(
                2_070,
                kb(10),
                ZERO,
                gb(4) + mb(200),
                hrs(1) + mins(50),
                secs(26_321),
                ZD,
                "Load data, slow",
            ),
            row(
                602,
                kb(405),
                ZERO,
                gb(447),
                hrs(1) + mins(10),
                secs(66_657),
                ZD,
                "Load data, large",
            ),
            row(
                180,
                kb(446),
                ZERO,
                tb(1) + gb(100),
                hrs(5) + mins(5),
                secs(125_662),
                ZD,
                "Load data, huge",
            ),
            row(
                6_035,
                gb(230),
                gb(8) + mb(800),
                mb(491),
                mins(15),
                secs(104_338),
                secs(66_760),
                "Aggregate, fast",
            ),
            row(
                379,
                tb(1) + gb(900),
                mb(502),
                gb(2) + mb(600),
                mins(30),
                secs(348_942),
                secs(76_736),
                "Aggregate and expand",
            ),
            row(
                159,
                gb(418),
                tb(2) + gb(500),
                gb(45),
                hrs(1) + mins(25),
                secs(1_076_089),
                secs(974_395),
                "Expand and aggregate",
            ),
            row(
                793,
                gb(255),
                gb(788),
                gb(1) + mb(600),
                mins(35),
                secs(384_562),
                secs(338_050),
                "Data transform",
            ),
            row(
                19,
                tb(7) + gb(600),
                gb(51),
                kb(104),
                mins(55),
                secs(4_843_452),
                secs(853_911),
                "Data summary",
            ),
        ],
        // FB-2009 peak-to-median ≈ 31:1 (§5.2).
        arrival: ArrivalParams {
            diurnal_amplitude: 0.3,
            peak_hour: 15.0,
            burst_sigma: 1.25,
        },
        // FB-2009 ships no path names.
        access: AccessModel::paper_defaults(0.30, 0.20),
        paths: PathAvailability {
            input: false,
            output: false,
        },
        has_names: true,
    }
}

/// FB-2010: 3 000 machines, 45 days, 1 169 184 jobs, 1.5 EB.
pub fn fb2010() -> WorkloadProfile {
    WorkloadProfile {
        kind: WorkloadKind::Fb2010,
        machines: 3_000,
        length_days: 45.0,
        total_jobs: 1_169_184,
        job_types: vec![
            row(
                1_145_663,
                mb(6) + kb(900),
                b(600),
                kb(60),
                mins(1),
                secs(48),
                secs(34),
                "Small jobs",
            ),
            row(
                7_911,
                gb(50),
                ZERO,
                gb(61),
                hrs(8),
                secs(60_664),
                ZD,
                "Map only transform, 8 hrs",
            ),
            row(
                779,
                tb(3) + gb(600),
                ZERO,
                tb(4) + gb(400),
                mins(45),
                secs(3_081_710),
                ZD,
                "Map only transform, 45 min",
            ),
            row(
                670,
                tb(2) + gb(100),
                ZERO,
                gb(2) + mb(700),
                hrs(1) + mins(20),
                secs(9_457_592),
                ZD,
                "Map only aggregate",
            ),
            row(
                104,
                gb(35),
                ZERO,
                gb(3) + mb(500),
                hrs(72),
                secs(198_436),
                ZD,
                "Map only transform, 3 days",
            ),
            row(
                11_491,
                tb(1) + gb(500),
                gb(30),
                gb(2) + mb(200),
                mins(30),
                secs(1_112_765),
                secs(387_191),
                "Aggregate",
            ),
            row(
                1_876,
                gb(711),
                tb(2) + gb(600),
                gb(860),
                hrs(2),
                secs(1_618_792),
                secs(2_056_439),
                "Transform, 2 hrs",
            ),
            row(
                454,
                tb(9),
                tb(1) + gb(500),
                tb(1) + gb(200),
                hrs(1),
                secs(1_795_682),
                secs(818_344),
                "Aggregate and transform",
            ),
            row(
                169,
                tb(2) + gb(700),
                tb(12),
                gb(260),
                hrs(2) + mins(7),
                secs(2_862_726),
                secs(3_091_678),
                "Expand and aggregate",
            ),
            row(
                67,
                gb(630),
                tb(1) + gb(200),
                gb(140),
                hrs(18),
                secs(1_545_220),
                secs(18_144_174),
                "Transform, 18 hrs",
            ),
        ],
        // FB-2010 peak-to-median dropped to ≈ 9:1 after multiplexing more
        // organizations (§5.2); the diurnal is visually identifiable (Fig. 7).
        arrival: ArrivalParams {
            diurnal_amplitude: 0.5,
            peak_hour: 15.0,
            burst_sigma: 0.8,
        },
        // FB-2010 ships input paths only.
        access: AccessModel::paper_defaults(0.35, 0.20),
        paths: PathAvailability {
            input: true,
            output: false,
        },
        has_names: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_profiles_in_table1_order() {
        let profiles = WorkloadProfile::paper_seven();
        let labels: Vec<&str> = profiles.iter().map(|p| p.kind.label()).collect();
        assert_eq!(
            labels,
            vec!["CC-a", "CC-b", "CC-c", "CC-d", "CC-e", "FB-2009", "FB-2010"]
        );
    }

    #[test]
    fn job_type_counts_sum_to_table1_totals() {
        for p in WorkloadProfile::paper_seven() {
            let sum: u64 = p.job_types.iter().map(|t| t.count).sum();
            assert_eq!(
                sum, p.total_jobs,
                "{}: Table 2 cluster counts must sum to the Table 1 job count",
                p.kind
            );
        }
    }

    #[test]
    fn small_jobs_dominate_every_workload() {
        // §6.2: "jobs touching <10 GB of total data make up >92 % of all jobs"
        // — in every profile the `Small jobs` row must dominate.
        for p in WorkloadProfile::paper_seven() {
            let total: u64 = p.job_types.iter().map(|t| t.count).sum();
            let small = p
                .job_types
                .iter()
                .find(|t| t.label == "Small jobs")
                .expect("every workload has a Small jobs cluster");
            let share = small.count as f64 / total as f64;
            assert!(share > 0.9, "{}: small-job share {share}", p.kind);
        }
    }

    #[test]
    fn availability_matrix_matches_paper() {
        assert!(!cc_a().paths.input && !cc_a().paths.output);
        assert!(!fb2009().paths.input && !fb2009().paths.output);
        assert!(fb2010().paths.input && !fb2010().paths.output);
        for p in [cc_b(), cc_c(), cc_d(), cc_e()] {
            assert!(p.paths.input && p.paths.output, "{}", p.kind);
        }
        assert!(!fb2010().has_names);
        assert!(fb2009().has_names);
    }

    #[test]
    fn map_only_types_exist_in_all_but_two_workloads() {
        // §6.2: "map-only jobs appear in all but two workloads".
        let with_map_only = WorkloadProfile::paper_seven()
            .iter()
            .filter(|p| p.job_types.iter().any(|t| t.is_map_only()))
            .count();
        assert_eq!(with_map_only, 5);
    }

    #[test]
    fn arrival_model_scales_rate() {
        let p = fb2009();
        let full = p.arrival_model(1.0);
        let tenth = p.arrival_model(0.1);
        assert!((full.jobs_per_hour / tenth.jobs_per_hour - 10.0).abs() < 1e-9);
        // FB-2009: 1 129 193 jobs over 180 days ≈ 261 jobs/hour.
        assert!((full.jobs_per_hour - 261.4).abs() < 1.0);
    }

    #[test]
    fn for_kind_round_trips() {
        for kind in WorkloadKind::PAPER_SEVEN {
            let p = WorkloadProfile::for_kind(&kind).unwrap();
            assert_eq!(p.kind, kind);
        }
        assert!(WorkloadProfile::for_kind(&WorkloadKind::Custom("x".into())).is_none());
    }

    #[test]
    fn fb2010_is_less_bursty_than_fb2009() {
        // §5.2: peak-to-median dropped 31:1 → 9:1 between the snapshots.
        assert!(fb2010().arrival.burst_sigma < fb2009().arrival.burst_sigma);
    }

    #[test]
    fn bytes_moved_order_of_magnitude_sanity() {
        // Expected bytes moved per job type = count × centroid total IO.
        // The log-normal jitter preserves medians, so Σ count·centroid must
        // land within the right order of magnitude of Table 1 bytes moved.
        // (Means exceed medians under log-normal jitter, so the generated
        // totals run higher; Table 1 checks happen at shape level.)
        let expectations: &[(WorkloadProfile, f64)] = &[
            (cc_a(), 80e12),
            (cc_b(), 600e12),
            (cc_c(), 18e15),
            (cc_d(), 8e15),
            (cc_e(), 590e12),
            (fb2009(), 9.4e15),
        ];
        for (p, published) in expectations {
            let centroid_total: f64 = p
                .job_types
                .iter()
                .map(|t| t.count as f64 * t.total_io().as_f64())
                .sum();
            let ratio = centroid_total / published;
            assert!(
                (0.2..=5.0).contains(&ratio),
                "{}: centroid-implied bytes {centroid_total:.2e} vs published {published:.2e} (ratio {ratio:.2})",
                p.kind
            );
        }
    }
}
