//! The workspace rule engine: rule identities, findings, and the six
//! architecture rules.
//!
//! | id           | invariant enforced                                            |
//! |--------------|---------------------------------------------------------------|
//! | `layering`   | dependency graph matches `docs/depgraph.spec`; obs is the floor, catalog never reaches query, no cycles; every `use` resolves to a declared edge |
//! | `panic`      | no `unwrap`/`expect`/`panic!`-family/constant-subscript indexing in non-test library code of store/query/catalog/sim/obs |
//! | `clock`      | `Instant::now`/`SystemTime::now` only inside `swim-obs`       |
//! | `ordering`   | every atomic `Ordering::…` outside swim-obs/compat carries a `// lint: ordering:` justification |
//! | `durability` | `fs::rename`/`fs::write`/`fs::hard_link`/`File::create` in swim-catalog only inside the fsynced publish helpers |
//! | `env`        | every `SWIM_*` literal is declared in `docs/env-registry.txt`, nothing in the registry is stale, and the README table matches |
//! | `waiver`     | meta: malformed/reasonless/unknown/unused waivers             |
//!
//! Rules emit through a [`Sink`] that consults the file's waivers, so a
//! `// lint: allow(rule, "reason")` downgrade is applied uniformly.

use std::collections::BTreeMap;
use std::fmt;

use crate::lex::{Tok, TokKind};
use crate::scope::Scopes;
use crate::spec::DepSpec;
use crate::waiver::Waivers;
use crate::workspace::{CrateInfo, FileKind, SourceFile, Workspace};

/// Crates whose non-test library code must be panic-free.
pub const PANIC_CRATES: [&str; 5] = [
    "swim-store",
    "swim-query",
    "swim-catalog",
    "swim-sim",
    "swim-obs",
];

/// Functions in `crates/catalog` allowed to touch the filesystem
/// publish primitives directly — everything else must call them.
pub const DURABILITY_HELPERS: [&str; 5] = [
    "write_manifest",
    "write_shard_file",
    "publish_no_clobber",
    "sync_file",
    "sync_dir",
];

const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Identity of a rule (or the waiver meta-rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// L1 — dependency layering.
    Layering,
    /// L2 — panic policy.
    Panic,
    /// L3 — clock discipline.
    Clock,
    /// L4 — atomics audit.
    Ordering,
    /// L5 — durability discipline.
    Durability,
    /// L6 — environment variable registry.
    Env,
    /// Meta — waiver hygiene (not itself waivable).
    Waiver,
}

impl RuleId {
    /// All rules, reporting order.
    pub const ALL: [RuleId; 7] = [
        RuleId::Layering,
        RuleId::Panic,
        RuleId::Clock,
        RuleId::Ordering,
        RuleId::Durability,
        RuleId::Env,
        RuleId::Waiver,
    ];

    /// The names accepted inside `lint: allow(...)`.
    pub const WAIVABLE_NAMES: [&'static str; 6] = [
        "layering",
        "panic",
        "clock",
        "ordering",
        "durability",
        "env",
    ];

    /// Stable string id.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::Layering => "layering",
            RuleId::Panic => "panic",
            RuleId::Clock => "clock",
            RuleId::Ordering => "ordering",
            RuleId::Durability => "durability",
            RuleId::Env => "env",
            RuleId::Waiver => "waiver",
        }
    }

    /// Parse a rule name as used in waivers — the meta rule is
    /// deliberately not waivable.
    pub fn waivable_from_str(s: &str) -> Option<RuleId> {
        match s {
            "layering" => Some(RuleId::Layering),
            "panic" => Some(RuleId::Panic),
            "clock" => Some(RuleId::Clock),
            "ordering" => Some(RuleId::Ordering),
            "durability" => Some(RuleId::Durability),
            "env" => Some(RuleId::Env),
            _ => None,
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule that fired.
    pub rule: RuleId,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line (0 for file-level findings).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// A finding suppressed by a reasoned waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waived {
    /// Rule that would have fired.
    pub rule: RuleId,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The waiver's reason.
    pub reason: String,
}

/// Collects findings for one file, applying its waivers.
pub struct Sink<'a> {
    /// Workspace-relative path findings are attributed to.
    pub file: &'a str,
    /// The file's parsed waivers.
    pub waivers: &'a mut Waivers,
    /// Output: surviving findings.
    pub findings: &'a mut Vec<Finding>,
    /// Output: waived findings.
    pub waived: &'a mut Vec<Waived>,
}

impl Sink<'_> {
    /// Report a violation; a matching waiver downgrades it.
    pub fn emit(&mut self, rule: RuleId, line: u32, message: String) {
        if let Some(reason) = self.waivers.consume(rule, line) {
            self.waived.push(Waived {
                rule,
                file: self.file.to_owned(),
                line,
                reason,
            });
        } else {
            self.findings.push(Finding {
                rule,
                file: self.file.to_owned(),
                line,
                message,
            });
        }
    }
}

/// Per-file context shared by the token rules.
pub struct FileCtx<'a> {
    /// The crate the file belongs to.
    pub krate: &'a CrateInfo,
    /// The file itself.
    pub file: &'a SourceFile,
    /// Its token stream.
    pub toks: &'a [Tok],
    /// Indices of non-comment tokens, in order.
    pub code: Vec<usize>,
    /// Test/fn structure.
    pub scopes: &'a Scopes,
}

impl<'a> FileCtx<'a> {
    /// Build the context (computes the code-token index).
    pub fn new(
        krate: &'a CrateInfo,
        file: &'a SourceFile,
        toks: &'a [Tok],
        scopes: &'a Scopes,
    ) -> Self {
        let code = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
        FileCtx {
            krate,
            file,
            toks,
            code,
            scopes,
        }
    }

    fn tok(&self, w: usize) -> &Tok {
        &self.toks[self.code[w]]
    }

    fn in_test(&self, w: usize) -> bool {
        self.file.kind.is_test_target() || self.scopes.test_mask[self.code[w]]
    }
}

// ----------------------------------------------------------------------
// L2 — panic policy
// ----------------------------------------------------------------------

/// No `unwrap`/`expect` calls, `panic!`-family macros, or
/// constant-subscript indexing in non-test library code of the
/// panic-free crates.
pub fn check_panic(ctx: &FileCtx<'_>, sink: &mut Sink<'_>) {
    if !PANIC_CRATES.contains(&ctx.krate.name.as_str()) || ctx.file.kind != FileKind::Lib {
        return;
    }
    for w in 0..ctx.code.len() {
        if ctx.in_test(w) {
            continue;
        }
        let tok = ctx.tok(w);
        let prev = w.checked_sub(1).map(|p| ctx.tok(p));
        let next = ctx.code.get(w + 1).map(|_| ctx.tok(w + 1));
        match tok.kind {
            TokKind::Ident if tok.text == "unwrap" || tok.text == "expect" => {
                let is_method_call =
                    prev.is_some_and(|p| p.is_punct(".")) && next.is_some_and(|n| n.is_punct("("));
                if is_method_call {
                    sink.emit(
                        RuleId::Panic,
                        tok.line,
                        format!(
                            "`.{}()` in non-test library code of {} (panic policy): return a \
                             typed error, or waive with the invariant that makes it impossible",
                            tok.text, ctx.krate.name
                        ),
                    );
                }
            }
            TokKind::Ident
                if matches!(
                    tok.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && next.is_some_and(|n| n.is_punct("!")) =>
            {
                sink.emit(
                    RuleId::Panic,
                    tok.line,
                    format!(
                        "`{}!` in non-test library code of {} (panic policy)",
                        tok.text, ctx.krate.name
                    ),
                );
            }
            TokKind::Punct if tok.text == "[" => {
                let postfix = prev.is_some_and(|p| {
                    matches!(p.kind, TokKind::Ident | TokKind::Num)
                        || p.is_punct(")")
                        || p.is_punct("]")
                        || p.is_punct("?")
                });
                let const_subscript = next.is_some_and(|n| n.kind == TokKind::Num);
                if postfix && const_subscript {
                    sink.emit(
                        RuleId::Panic,
                        tok.line,
                        "constant-subscript indexing in non-test library code (panic policy): \
                         use `get`/`split_first`/array patterns, or waive with the length \
                         invariant"
                            .to_owned(),
                    );
                }
            }
            _ => {}
        }
    }
}

// ----------------------------------------------------------------------
// L3 — clock discipline
// ----------------------------------------------------------------------

/// `Instant::now()` / `SystemTime::now()` may only appear inside
/// `swim-obs`; everything else routes timing through `swim_obs::timed`
/// so spans and reports share one clock.
pub fn check_clock(ctx: &FileCtx<'_>, sink: &mut Sink<'_>) {
    if ctx.krate.name == "swim-obs" {
        return;
    }
    for w in 0..ctx.code.len() {
        if ctx.file.kind == FileKind::Test || ctx.scopes.test_mask[ctx.code[w]] {
            continue;
        }
        let tok = ctx.tok(w);
        if tok.kind == TokKind::Ident && (tok.text == "Instant" || tok.text == "SystemTime") {
            let qualifies = ctx.code.get(w + 2).is_some()
                && ctx.tok(w + 1).is_punct("::")
                && ctx.tok(w + 2).is_ident("now");
            if qualifies {
                sink.emit(
                    RuleId::Clock,
                    tok.line,
                    format!(
                        "`{}::now()` outside swim-obs (clock discipline): route wall-clock \
                         reads through `swim_obs::timed`/`swim_obs::span`",
                        tok.text
                    ),
                );
            }
        }
    }
}

// ----------------------------------------------------------------------
// L4 — atomics audit
// ----------------------------------------------------------------------

/// Every atomic `Ordering::…` outside swim-obs and the compat shims
/// must carry a `// lint: ordering:` justification on its line (or the
/// line above).
pub fn check_ordering(ctx: &FileCtx<'_>, sink: &mut Sink<'_>) {
    if ctx.krate.name == "swim-obs" || ctx.krate.is_compat() {
        return;
    }
    for w in 0..ctx.code.len() {
        if ctx.in_test(w) {
            continue;
        }
        let tok = ctx.tok(w);
        if tok.is_ident("Ordering")
            && ctx.code.get(w + 2).is_some()
            && ctx.tok(w + 1).is_punct("::")
            && ATOMIC_ORDERINGS.contains(&ctx.tok(w + 2).text.as_str())
        {
            let variant = ctx.tok(w + 2).text.clone();
            if sink.waivers.consume_justify(tok.line) {
                continue;
            }
            sink.emit(
                RuleId::Ordering,
                tok.line,
                format!(
                    "`Ordering::{variant}` without a justification (atomics audit): add \
                     `// lint: ordering: <why this memory order is sufficient>`"
                ),
            );
        }
    }
}

// ----------------------------------------------------------------------
// L5 — durability discipline
// ----------------------------------------------------------------------

/// In `swim-catalog`, the filesystem publish primitives may only be
/// called from the fsynced temp+rename helpers; ad-hoc mutation can
/// tear the manifest.
pub fn check_durability(ctx: &FileCtx<'_>, sink: &mut Sink<'_>) {
    if ctx.krate.name != "swim-catalog" {
        return;
    }
    for w in 0..ctx.code.len() {
        if ctx.in_test(w) {
            continue;
        }
        let tok = ctx.tok(w);
        let site = if tok.is_ident("fs")
            && ctx.code.get(w + 2).is_some()
            && ctx.tok(w + 1).is_punct("::")
            && matches!(
                ctx.tok(w + 2).text.as_str(),
                "rename" | "write" | "hard_link"
            ) {
            Some(format!("fs::{}", ctx.tok(w + 2).text))
        } else if tok.is_ident("File")
            && ctx.code.get(w + 2).is_some()
            && ctx.tok(w + 1).is_punct("::")
            && ctx.tok(w + 2).is_ident("create")
        {
            Some("File::create".to_owned())
        } else {
            None
        };
        if let Some(site) = site {
            let enclosing = ctx.scopes.enclosing_fn(ctx.code[w]);
            if enclosing.is_some_and(|f| DURABILITY_HELPERS.contains(&f)) {
                continue;
            }
            sink.emit(
                RuleId::Durability,
                tok.line,
                format!(
                    "`{site}` outside the publish helpers ({}) — durable catalog mutation \
                     must go through the fsynced temp+rename path",
                    DURABILITY_HELPERS.join("/")
                ),
            );
        }
    }
}

// ----------------------------------------------------------------------
// L1 — layering (per-file use check)
// ----------------------------------------------------------------------

/// Every `swim_*::`/vendored-crate path reference must resolve to a
/// declared dependency edge (dev-dependencies only in test contexts).
pub fn check_uses(ctx: &FileCtx<'_>, lib_to_crate: &BTreeMap<String, String>, sink: &mut Sink<'_>) {
    for w in 0..ctx.code.len() {
        let tok = ctx.tok(w);
        if tok.kind != TokKind::Ident {
            continue;
        }
        let Some(dep_crate) = lib_to_crate.get(&tok.text) else {
            continue;
        };
        let next = ctx.code.get(w + 1).map(|_| ctx.tok(w + 1));
        let prev = w.checked_sub(1).map(|p| ctx.tok(p));
        let is_ref = next.is_some_and(|n| n.is_punct("::"))
            || (prev.is_some_and(|p| p.is_ident("use"))
                && next.is_some_and(|n| n.is_punct(";") || n.is_ident("as")));
        if !is_ref || *dep_crate == ctx.krate.name {
            continue;
        }
        let dev_ok = ctx.file.kind.uses_dev_deps() || ctx.scopes.test_mask[ctx.code[w]];
        let declared = ctx.krate.deps.contains(dep_crate)
            || (dev_ok && ctx.krate.dev_deps.contains(dep_crate));
        if !declared {
            sink.emit(
                RuleId::Layering,
                tok.line,
                format!(
                    "`{}` resolves to `{dep_crate}`, which is not a declared {}dependency of \
                     {} (docs/depgraph.spec)",
                    tok.text,
                    if dev_ok { "" } else { "non-dev " },
                    ctx.krate.name
                ),
            );
        }
    }
}

// ----------------------------------------------------------------------
// L1 — layering (workspace-level checks)
// ----------------------------------------------------------------------

/// Manifest dependency sets must match the spec exactly.
pub fn check_crate_manifest(krate: &CrateInfo, spec: &DepSpec, findings: &mut Vec<Finding>) {
    fn mismatch(
        krate: &CrateInfo,
        section: &str,
        actual: &std::collections::BTreeSet<String>,
        allowed: &std::collections::BTreeSet<String>,
        findings: &mut Vec<Finding>,
    ) {
        if actual != allowed {
            let extra: Vec<&str> = actual.difference(allowed).map(String::as_str).collect();
            let missing: Vec<&str> = allowed.difference(actual).map(String::as_str).collect();
            let mut parts = Vec::new();
            if !extra.is_empty() {
                parts.push(format!("undeclared in spec: {}", extra.join(", ")));
            }
            if !missing.is_empty() {
                parts.push(format!("in spec but not manifest: {}", missing.join(", ")));
            }
            findings.push(Finding {
                rule: RuleId::Layering,
                file: krate.manifest_rel.clone(),
                line: 0,
                message: format!(
                    "[{section}] of {} diverges from docs/depgraph.spec ({})",
                    krate.name,
                    parts.join("; ")
                ),
            });
        }
    }
    match spec.deps.get(&krate.name) {
        None => findings.push(Finding {
            rule: RuleId::Layering,
            file: krate.manifest_rel.clone(),
            line: 0,
            message: format!(
                "crate `{}` is not listed in docs/depgraph.spec — every workspace member \
                 must declare its place in the graph",
                krate.name
            ),
        }),
        Some(allowed) => mismatch(krate, "dependencies", &krate.deps, allowed, findings),
    }
    if let Some(allowed_dev) = spec.dev.get(&krate.name) {
        mismatch(
            krate,
            "dev-dependencies",
            &krate.dev_deps,
            allowed_dev,
            findings,
        );
    }
}

/// The spec itself must satisfy the architecture's hard constraints:
/// obs is the floor, catalog never reaches query, the graph is acyclic,
/// and every name resolves.
pub fn check_spec(ws: &Workspace, spec: &DepSpec, spec_rel: &str, findings: &mut Vec<Finding>) {
    let mut emit = |message: String| {
        findings.push(Finding {
            rule: RuleId::Layering,
            file: spec_rel.to_owned(),
            line: 0,
            message,
        });
    };
    let members: std::collections::BTreeSet<&str> =
        ws.crates.iter().map(|c| c.name.as_str()).collect();
    for name in spec.crates() {
        if !members.contains(name) {
            emit(format!(
                "spec names `{name}`, which is not a workspace member"
            ));
        }
    }
    for (name, deps) in spec.deps.iter().chain(spec.dev.iter()) {
        for d in deps {
            if !spec.deps.contains_key(d) {
                emit(format!(
                    "`{name}` depends on `{d}`, which has no spec entry"
                ));
            }
        }
    }
    if spec.deps.get("swim-obs").is_some_and(|d| !d.is_empty()) {
        emit(
            "swim-obs must have no dependencies — it is the floor every layer records into".into(),
        );
    }
    if spec.deps.contains_key("swim-catalog") && spec.reaches("swim-catalog", "swim-query", true) {
        emit(
            "swim-catalog reaches swim-query — the catalog must stay query-free (that is what \
             lets swim-report accept catalogs without a cycle)"
                .into(),
        );
    }
    if let Some(cycle) = spec.find_cycle() {
        emit(format!("dependency cycle: {}", cycle.join(" -> ")));
    }
}

// ----------------------------------------------------------------------
// L6 — env registry (per-file + workspace-level)
// ----------------------------------------------------------------------

/// Scan one file for `SWIM_*` string literals; unregistered names are
/// findings, registered names are recorded in `referenced`.
pub fn check_env_refs(
    ctx: &FileCtx<'_>,
    registry: &[crate::spec::EnvVar],
    referenced: &mut std::collections::BTreeSet<String>,
    sink: &mut Sink<'_>,
) {
    for &i in &ctx.code {
        let tok = &ctx.toks[i];
        if tok.kind != TokKind::Str || !is_env_name(&tok.text) {
            continue;
        }
        if registry.iter().any(|v| v.name == tok.text) {
            referenced.insert(tok.text.clone());
        } else {
            sink.emit(
                RuleId::Env,
                tok.line,
                format!(
                    "`{}` is read but not declared in docs/env-registry.txt — register it \
                     (the README table is generated from the registry)",
                    tok.text
                ),
            );
        }
    }
}

/// `SWIM_` followed by at least one `[A-Z0-9_]` character, nothing else.
fn is_env_name(s: &str) -> bool {
    s.strip_prefix("SWIM_").is_some_and(|rest| {
        !rest.is_empty()
            && rest
                .bytes()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == b'_')
    })
}

/// Registry entries nothing references are stale; the README table must
/// be the rendered registry.
pub fn check_env_registry(
    registry: &[crate::spec::EnvVar],
    registry_rel: &str,
    referenced: &std::collections::BTreeSet<String>,
    readme_text: Option<&str>,
    readme_rel: &str,
    findings: &mut Vec<Finding>,
) {
    for var in registry {
        if !referenced.contains(&var.name) {
            findings.push(Finding {
                rule: RuleId::Env,
                file: registry_rel.to_owned(),
                line: var.line,
                message: format!(
                    "`{}` is registered but no source file references it — remove the stale \
                     entry (or the variable lost its reader by accident)",
                    var.name
                ),
            });
        }
    }
    let Some(readme) = readme_text else {
        return;
    };
    const BEGIN: &str = "<!-- env-registry:begin -->";
    const END: &str = "<!-- env-registry:end -->";
    let expected = crate::spec::env_readme_table(registry);
    let actual = readme.find(BEGIN).and_then(|b| {
        let after = &readme[b + BEGIN.len()..];
        after.find(END).map(|e| after[..e].trim().to_owned())
    });
    match actual {
        None => findings.push(Finding {
            rule: RuleId::Env,
            file: readme_rel.to_owned(),
            line: 0,
            message: format!(
                "README has no `{BEGIN}` … `{END}` block — the env-var table is generated \
                 from docs/env-registry.txt"
            ),
        }),
        Some(actual) if actual != expected.trim() => findings.push(Finding {
            rule: RuleId::Env,
            file: readme_rel.to_owned(),
            line: 0,
            message: "README env-registry table is out of date with docs/env-registry.txt \
                      (regenerate with `swim-lint --print-env-table`)"
                .to_owned(),
        }),
        Some(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_name_shape() {
        assert!(is_env_name("SWIM_OBS"));
        assert!(is_env_name("SWIM_OBS_JSONL"));
        assert!(!is_env_name("SWIM_"));
        assert!(!is_env_name("SWIM_obs"));
        assert!(!is_env_name("SWIMMING"));
        assert!(!is_env_name("PREFIX_SWIM_OBS"));
    }
}
