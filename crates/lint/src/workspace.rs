//! Workspace discovery: members from the root manifest, then each
//! crate's manifest and source files classified by cargo target kind.
//!
//! Classification mirrors cargo's auto-discovery for this workspace's
//! layout: `src/**` is library code (`src/main.rs` and `src/bin/**` are
//! binaries), `tests/*.rs` / `benches/*.rs` / `examples/*.rs` are
//! top-level-only targets. Subdirectories of `tests/` are *not*
//! collected — cargo doesn't compile them, and that is where lint test
//! fixtures (deliberately violating code) live.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use crate::manifest;

/// Which cargo target a source file belongs to. Decides rule scope:
/// `Lib` is held to the strictest policies; tests and benches get
/// dev-dependencies and are exempt from the panic rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/**` minus binaries.
    Lib,
    /// `src/main.rs` and `src/bin/**`.
    Bin,
    /// `tests/*.rs`.
    Test,
    /// `benches/*.rs`.
    Bench,
    /// `examples/*.rs` (compiled against dev-dependencies, like tests).
    Example,
}

impl FileKind {
    /// Target kinds that compile against `[dev-dependencies]`.
    pub fn uses_dev_deps(self) -> bool {
        matches!(self, FileKind::Test | FileKind::Bench | FileKind::Example)
    }

    /// Target kinds that are test-only end to end.
    pub fn is_test_target(self) -> bool {
        matches!(self, FileKind::Test | FileKind::Bench)
    }
}

/// One source file, loaded.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Cargo target classification.
    pub kind: FileKind,
    /// File contents.
    pub text: String,
}

/// One workspace member.
#[derive(Debug)]
pub struct CrateInfo {
    /// Package name (`swim-store`).
    pub name: String,
    /// Library target name (`swim_store`).
    pub lib_name: String,
    /// Crate directory relative to the root (`crates/store`; empty for
    /// the root package).
    pub rel_dir: String,
    /// Manifest path relative to the root.
    pub manifest_rel: String,
    /// `[dependencies]` keys.
    pub deps: BTreeSet<String>,
    /// `[dev-dependencies]` keys.
    pub dev_deps: BTreeSet<String>,
    /// Sources, sorted by path.
    pub files: Vec<SourceFile>,
}

impl CrateInfo {
    /// `true` for the vendored stand-ins under `crates/compat/`.
    pub fn is_compat(&self) -> bool {
        self.rel_dir.starts_with("crates/compat/")
    }
}

/// The loaded workspace.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute root directory.
    pub root: PathBuf,
    /// Members sorted by name, root package first by its name ordering.
    pub crates: Vec<CrateInfo>,
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn read(path: &Path) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
}

/// Collect `dir/*.rs` (non-recursive), sorted.
fn flat_rs(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_file() && p.extension().is_some_and(|e| e == "rs"))
        .collect();
    out.sort();
    out
}

/// Collect `dir/**/*.rs` (recursive), sorted.
fn deep_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            deep_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

fn load_crate(root: &Path, dir: &Path) -> Result<CrateInfo, String> {
    let manifest_path = dir.join("Cargo.toml");
    let m = manifest::parse(&read(&manifest_path)?);
    let name = m
        .name
        .ok_or_else(|| format!("{}: no package name", manifest_path.display()))?;
    let mut files = Vec::new();

    // src/** — Lib except main.rs and bin/**.
    let src = dir.join("src");
    let bin_dir = src.join("bin");
    let mut src_files = Vec::new();
    deep_rs(&src, &mut src_files);
    for p in src_files {
        let kind = if p.starts_with(&bin_dir) || p.file_name().is_some_and(|f| f == "main.rs") {
            FileKind::Bin
        } else {
            FileKind::Lib
        };
        files.push((p, kind));
    }
    for p in flat_rs(&dir.join("tests")) {
        files.push((p, FileKind::Test));
    }
    for p in flat_rs(&dir.join("benches")) {
        files.push((p, FileKind::Bench));
    }
    for p in flat_rs(&dir.join("examples")) {
        files.push((p, FileKind::Example));
    }

    let mut sources = Vec::new();
    for (p, kind) in files {
        sources.push(SourceFile {
            rel_path: rel(root, &p),
            kind,
            text: read(&p)?,
        });
    }
    sources.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));

    Ok(CrateInfo {
        lib_name: name.replace('-', "_"),
        name,
        rel_dir: rel(root, dir),
        manifest_rel: rel(root, &manifest_path),
        deps: m.deps,
        dev_deps: m.dev_deps,
        files: sources,
    })
}

/// Load the workspace rooted at `root` (the directory holding the
/// workspace `Cargo.toml`).
pub fn load(root: &Path) -> Result<Workspace, String> {
    let root = root
        .canonicalize()
        .map_err(|e| format!("{}: {e}", root.display()))?;
    let root_manifest_path = root.join("Cargo.toml");
    let root_manifest = manifest::parse(&read(&root_manifest_path)?);
    let mut crates = Vec::new();
    if root_manifest.name.is_some() {
        crates.push(load_crate(&root, &root)?);
    }
    for member in &root_manifest.members {
        crates.push(load_crate(&root, &root.join(member))?);
    }
    crates.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(Workspace { root, crates })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_this_workspace() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let ws = load(&root).unwrap();
        let lint = ws.crates.iter().find(|c| c.name == "swim-lint").unwrap();
        assert_eq!(lint.lib_name, "swim_lint");
        assert!(lint
            .files
            .iter()
            .any(|f| f.rel_path == "crates/lint/src/lex.rs"));
        // Fixture sources under tests/fixtures/ must NOT be collected
        // (tests/fixtures_rules.rs, the flat test target, is fine).
        assert!(lint
            .files
            .iter()
            .all(|f| !f.rel_path.contains("tests/fixtures/")));
        let store = ws.crates.iter().find(|c| c.name == "swim-store").unwrap();
        assert!(store.deps.contains("swim-obs"));
        let bench = ws.crates.iter().find(|c| c.name == "swim-bench").unwrap();
        assert!(bench
            .files
            .iter()
            .any(|f| f.kind == FileKind::Bin && f.rel_path.ends_with("swim-catalog.rs")));
        assert!(bench
            .files
            .iter()
            .any(|f| f.kind == FileKind::Bench && f.rel_path.starts_with("crates/bench/benches/")));
    }
}
