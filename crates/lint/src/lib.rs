//! # swim-lint
//!
//! Workspace-aware static analysis that turns the architecture's
//! written invariants into machine-checked rules. The workspace's
//! correctness story rests on disciplines that used to live only in
//! prose — the dependency graph is strictly layered, hot-path crates
//! stay panic-free, wall-clock reads are unified in `swim-obs`, atomic
//! memory orders are justified, durable catalog mutation goes through
//! the fsynced publish helpers, and every `SWIM_*` environment variable
//! is documented. `swim-lint` tokenizes the workspace's own sources
//! with a hand-rolled lexer ([`lex`]), scopes out `#[cfg(test)]` code
//! ([`scope`]), and runs a rule engine ([`rules`]) over
//! (file, token-stream, manifest) triples.
//!
//! Violations can carry narrowly-scoped waivers
//! (`// lint: allow(rule, "reason")` — see [`waiver`]); a waiver
//! without a reason is itself a finding. Results render through
//! `swim-report` as text/markdown and as fixed-shape JSON
//! ([`report`]), and per-rule counters are exported via `swim-obs`.
//!
//! ```
//! use std::path::Path;
//! // Lint this workspace (the repo the crate lives in).
//! let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
//! let result = swim_lint::run(&root).unwrap();
//! assert!(result.is_clean(), "{}", swim_lint::report::render_text(&result));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod lex;
pub mod manifest;
pub mod report;
pub mod rules;
pub mod scope;
pub mod spec;
pub mod waiver;
pub mod workspace;

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use swim_obs::Counter;

use rules::{Finding, RuleId, Sink, Waived};

/// Relative path of the dependency-graph spec.
pub const DEPGRAPH_SPEC: &str = "docs/depgraph.spec";
/// Relative path of the environment-variable registry.
pub const ENV_REGISTRY: &str = "docs/env-registry.txt";
/// Relative path of the README carrying the generated env table.
pub const README: &str = "README.md";

static FILES_SCANNED: Counter = Counter::new("lint.files_scanned");
static WAIVED_TOTAL: Counter = Counter::new("lint.findings_waived");
static FINDINGS_LAYERING: Counter = Counter::new("lint.findings.layering");
static FINDINGS_PANIC: Counter = Counter::new("lint.findings.panic");
static FINDINGS_CLOCK: Counter = Counter::new("lint.findings.clock");
static FINDINGS_ORDERING: Counter = Counter::new("lint.findings.ordering");
static FINDINGS_DURABILITY: Counter = Counter::new("lint.findings.durability");
static FINDINGS_ENV: Counter = Counter::new("lint.findings.env");
static FINDINGS_WAIVER: Counter = Counter::new("lint.findings.waiver");

fn finding_counter(rule: RuleId) -> &'static Counter {
    match rule {
        RuleId::Layering => &FINDINGS_LAYERING,
        RuleId::Panic => &FINDINGS_PANIC,
        RuleId::Clock => &FINDINGS_CLOCK,
        RuleId::Ordering => &FINDINGS_ORDERING,
        RuleId::Durability => &FINDINGS_DURABILITY,
        RuleId::Env => &FINDINGS_ENV,
        RuleId::Waiver => &FINDINGS_WAIVER,
    }
}

/// The outcome of one lint run.
#[derive(Debug)]
pub struct LintResult {
    /// Workspace members analyzed.
    pub crates: usize,
    /// Source files lexed and checked.
    pub files: usize,
    /// Surviving findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings suppressed by reasoned waivers, same order.
    pub waived: Vec<Waived>,
}

impl LintResult {
    /// `true` when no findings survived (waived ones don't count).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Per-rule `(rule, findings, waived)` in reporting order.
    pub fn rule_counts(&self) -> Vec<(RuleId, usize, usize)> {
        RuleId::ALL
            .iter()
            .map(|&rule| {
                (
                    rule,
                    self.findings.iter().filter(|f| f.rule == rule).count(),
                    self.waived.iter().filter(|w| w.rule == rule).count(),
                )
            })
            .collect()
    }
}

/// Lint the workspace rooted at `root`. Fails only on structural
/// problems (unreadable workspace, unlexable file); policy violations
/// come back as findings.
pub fn run(root: &Path) -> Result<LintResult, String> {
    let ws = workspace::load(root)?;
    let mut findings: Vec<Finding> = Vec::new();
    let mut waived: Vec<Waived> = Vec::new();

    // Policy files. A missing or unparsable spec is itself a finding —
    // the invariants must stay machine-checkable.
    let spec = match std::fs::read_to_string(ws.root.join(DEPGRAPH_SPEC)) {
        Ok(text) => match spec::parse_depgraph(&text) {
            Ok(spec) => Some(spec),
            Err(e) => {
                findings.push(Finding {
                    rule: RuleId::Layering,
                    file: DEPGRAPH_SPEC.to_owned(),
                    line: 0,
                    message: e,
                });
                None
            }
        },
        Err(e) => {
            findings.push(Finding {
                rule: RuleId::Layering,
                file: DEPGRAPH_SPEC.to_owned(),
                line: 0,
                message: format!("cannot read the dependency-graph spec: {e}"),
            });
            None
        }
    };
    let registry = match std::fs::read_to_string(ws.root.join(ENV_REGISTRY)) {
        Ok(text) => match spec::parse_env_registry(&text) {
            Ok(vars) => vars,
            Err(e) => {
                findings.push(Finding {
                    rule: RuleId::Env,
                    file: ENV_REGISTRY.to_owned(),
                    line: 0,
                    message: e,
                });
                Vec::new()
            }
        },
        Err(e) => {
            findings.push(Finding {
                rule: RuleId::Env,
                file: ENV_REGISTRY.to_owned(),
                line: 0,
                message: format!("cannot read the env-var registry: {e}"),
            });
            Vec::new()
        }
    };
    let readme_text = std::fs::read_to_string(ws.root.join(README)).ok();

    let lib_to_crate: BTreeMap<String, String> = ws
        .crates
        .iter()
        .map(|c| (c.lib_name.clone(), c.name.clone()))
        .collect();

    let mut files = 0usize;
    let mut env_referenced: BTreeSet<String> = BTreeSet::new();

    for krate in &ws.crates {
        if let Some(spec) = &spec {
            rules::check_crate_manifest(krate, spec, &mut findings);
        }
        for file in &krate.files {
            files += 1;
            let toks = lex::lex(&file.text)
                .map_err(|e| format!("{}: {e} (swim-lint lexer)", file.rel_path))?;
            let scopes = scope::analyze(&toks);
            let mut waivers = waiver::collect(&toks, &scopes.test_mask, file.kind.is_test_target());
            let ctx = rules::FileCtx::new(krate, file, &toks, &scopes);
            let mut sink = Sink {
                file: &file.rel_path,
                waivers: &mut waivers,
                findings: &mut findings,
                waived: &mut waived,
            };
            rules::check_uses(&ctx, &lib_to_crate, &mut sink);
            rules::check_panic(&ctx, &mut sink);
            rules::check_clock(&ctx, &mut sink);
            rules::check_ordering(&ctx, &mut sink);
            rules::check_durability(&ctx, &mut sink);
            rules::check_env_refs(&ctx, &registry, &mut env_referenced, &mut sink);

            // Waiver hygiene: malformed directives, then directives that
            // matched nothing (stale waivers rot fast if tolerated).
            for (line, message) in waivers.errors.clone() {
                findings.push(Finding {
                    rule: RuleId::Waiver,
                    file: file.rel_path.clone(),
                    line,
                    message,
                });
            }
            for allow in &waivers.allows {
                if !allow.used {
                    findings.push(Finding {
                        rule: RuleId::Waiver,
                        file: file.rel_path.clone(),
                        line: allow.line,
                        message: format!(
                            "unused waiver for `{}` — no matching finding on this line \
                             (remove it, or the code it covered moved)",
                            allow.rule.id()
                        ),
                    });
                }
            }
            for justify in &waivers.justifies {
                if !justify.used {
                    findings.push(Finding {
                        rule: RuleId::Waiver,
                        file: file.rel_path.clone(),
                        line: justify.line,
                        message: "unused ordering justification — no `Ordering::…` on this line"
                            .to_owned(),
                    });
                }
            }
        }
    }

    if let Some(spec) = &spec {
        rules::check_spec(&ws, spec, DEPGRAPH_SPEC, &mut findings);
    }
    rules::check_env_registry(
        &registry,
        ENV_REGISTRY,
        &env_referenced,
        readme_text.as_deref(),
        README,
        &mut findings,
    );

    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    waived.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    FILES_SCANNED.add(files as u64);
    WAIVED_TOTAL.add(waived.len() as u64);
    for f in &findings {
        finding_counter(f.rule).incr();
    }

    Ok(LintResult {
        crates: ws.crates.len(),
        files,
        findings,
        waived,
    })
}

/// Render the README env table from the registry at `root` (the
/// `--print-env-table` surface; keeps the generated table and checker
/// on one code path).
pub fn env_table(root: &Path) -> Result<String, String> {
    let text = std::fs::read_to_string(root.join(ENV_REGISTRY))
        .map_err(|e| format!("cannot read {ENV_REGISTRY}: {e}"))?;
    let vars = spec::parse_env_registry(&text)?;
    Ok(spec::env_readme_table(&vars))
}
