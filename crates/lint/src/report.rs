//! Rendering lint results: a `swim_report::Report` for text/markdown,
//! and a hand-rolled fixed-shape JSON document for machines and the CI
//! golden diff.

use swim_report::render::Table;
use swim_report::{Block, KeyValueBlock, Report, Section};

use crate::LintResult;

/// Build the typed report document (text and markdown render from it).
pub fn to_report(result: &LintResult) -> Report {
    let mut report = Report::new("swim-lint");

    let mut summary = Section::new("swim-lint: workspace invariants");
    summary.push(Block::KeyValue(KeyValueBlock::new(
        vec![
            ("crates", result.crates.to_string()),
            ("files scanned", result.files.to_string()),
            ("findings", result.findings.len().to_string()),
            ("waived", result.waived.len().to_string()),
        ],
        13,
    )));
    let mut rules = Table::new(vec!["rule", "findings", "waived"]);
    for (rule, findings, waived) in result.rule_counts() {
        rules.row(vec![
            rule.id().to_owned(),
            findings.to_string(),
            waived.to_string(),
        ]);
    }
    summary.captioned_table("per-rule results:", rules);
    report.push(summary);

    if !result.findings.is_empty() {
        let mut section = Section::new("Findings");
        let mut text = String::new();
        for f in &result.findings {
            text.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.file, f.line, f.rule, f.message
            ));
        }
        section.prose(text);
        report.push(section);
    }
    if !result.waived.is_empty() {
        let mut section = Section::new("Waivers");
        let mut text = String::new();
        for w in &result.waived {
            text.push_str(&format!(
                "{}:{}: [{}] waived: {}\n",
                w.file, w.line, w.rule, w.reason
            ));
        }
        section.prose(text);
        report.push(section);
    }
    report
}

/// Historical text format: section texts separated by blank lines.
pub fn render_text(result: &LintResult) -> String {
    to_report(result)
        .sections
        .iter()
        .map(Section::render_text)
        .collect::<Vec<_>>()
        .join("\n")
}

/// GitHub-flavoured markdown.
pub fn render_markdown(result: &LintResult) -> String {
    swim_report::markdown::render_report(&to_report(result))
}

/// Escape a string for JSON output.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Fixed-shape JSON: one finding/waiver per line, keys in a stable
/// order, entries pre-sorted by the engine — byte-stable for a given
/// workspace state, which is what the CI golden diff pins.
pub fn render_json(result: &LintResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"tool\": \"swim-lint\",\n");
    out.push_str(&format!("  \"crates\": {},\n", result.crates));
    out.push_str(&format!("  \"files\": {},\n", result.files));
    out.push_str(&format!(
        "  \"findings_total\": {},\n",
        result.findings.len()
    ));
    out.push_str(&format!("  \"waived_total\": {},\n", result.waived.len()));

    out.push_str("  \"rules\": [\n");
    let counts = result.rule_counts();
    for (k, (rule, findings, waived)) in counts.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"findings\": {findings}, \"waived\": {waived}}}{}\n",
            rule.id(),
            if k + 1 < counts.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");

    out.push_str("  \"findings\": [\n");
    for (k, f) in result.findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
            f.rule.id(),
            esc(&f.file),
            f.line,
            esc(&f.message),
            if k + 1 < result.findings.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ],\n");

    out.push_str("  \"waivers\": [\n");
    for (k, w) in result.waived.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}{}\n",
            w.rule.id(),
            esc(&w.file),
            w.line,
            esc(&w.reason),
            if k + 1 < result.waived.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, RuleId};

    fn result_with(findings: Vec<Finding>) -> LintResult {
        LintResult {
            crates: 2,
            files: 3,
            findings,
            waived: Vec::new(),
        }
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let json = render_json(&result_with(vec![Finding {
            rule: RuleId::Panic,
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            message: "a \"quoted\" thing\nsecond line".into(),
        }]));
        assert!(json.contains(r#""rule": "panic""#));
        assert!(json.contains(r#"\"quoted\""#));
        assert!(json.contains(r"\n"));
        // Every rule id appears in the rules array even with no findings.
        for rule in RuleId::ALL {
            assert!(json.contains(&format!("\"id\": \"{}\"", rule.id())));
        }
    }

    #[test]
    fn text_report_lists_findings() {
        let text = render_text(&result_with(vec![Finding {
            rule: RuleId::Clock,
            file: "a.rs".into(),
            line: 3,
            message: "tick".into(),
        }]));
        assert!(text.contains("a.rs:3: [clock] tick"), "{text}");
        assert!(text.contains("findings"), "{text}");
    }
}
