//! The two checked-in, machine-readable policy files:
//! `docs/depgraph.spec` (the dependency graph the layering rule
//! enforces) and `docs/env-registry.txt` (the `SWIM_*` environment
//! variable registry the env rule enforces and the README table is
//! generated from).

use std::collections::{BTreeMap, BTreeSet};

/// Parsed `docs/depgraph.spec`: for each crate, its exact
/// `[dependencies]` and `[dev-dependencies]` sets.
#[derive(Debug, Default)]
pub struct DepSpec {
    /// crate → allowed `[dependencies]`.
    pub deps: BTreeMap<String, BTreeSet<String>>,
    /// crate → allowed `[dev-dependencies]`.
    pub dev: BTreeMap<String, BTreeSet<String>>,
}

impl DepSpec {
    /// Every crate named anywhere in the spec (left-hand sides).
    pub fn crates(&self) -> BTreeSet<&str> {
        self.deps.keys().map(String::as_str).collect()
    }

    /// Is `to` reachable from `from` over normal dependency edges
    /// (optionally also dev edges)?
    pub fn reaches(&self, from: &str, to: &str, include_dev: bool) -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from.to_owned()];
        while let Some(cur) = stack.pop() {
            if cur == to {
                return true;
            }
            if !seen.insert(cur.clone()) {
                continue;
            }
            if let Some(next) = self.deps.get(&cur) {
                stack.extend(next.iter().cloned());
            }
            if include_dev {
                if let Some(next) = self.dev.get(&cur) {
                    stack.extend(next.iter().cloned());
                }
            }
        }
        false
    }

    /// Find a cycle in the normal-dependency graph, if any, returned as
    /// the crates on it.
    pub fn find_cycle(&self) -> Option<Vec<String>> {
        // Iterative DFS with colors: 0 unvisited, 1 on stack, 2 done.
        let mut color: BTreeMap<&str, u8> = BTreeMap::new();
        for start in self.deps.keys() {
            if color.get(start.as_str()).copied().unwrap_or(0) != 0 {
                continue;
            }
            let mut path: Vec<&str> = Vec::new();
            let mut stack: Vec<(&str, bool)> = vec![(start, false)];
            while let Some((node, leaving)) = stack.pop() {
                if leaving {
                    color.insert(node, 2);
                    path.pop();
                    continue;
                }
                match color.get(node).copied().unwrap_or(0) {
                    1 => {
                        let pos = path.iter().position(|&n| n == node).unwrap_or(0);
                        return Some(path[pos..].iter().map(|s| (*s).to_owned()).collect());
                    }
                    2 => continue,
                    _ => {}
                }
                color.insert(node, 1);
                path.push(node);
                stack.push((node, true));
                if let Some(next) = self.deps.get(node) {
                    for n in next {
                        match color.get(n.as_str()).copied().unwrap_or(0) {
                            0 => stack.push((n, false)),
                            1 => {
                                let pos = path.iter().position(|&p| p == n).unwrap_or(0);
                                let mut cycle: Vec<String> =
                                    path[pos..].iter().map(|s| (*s).to_owned()).collect();
                                cycle.push(n.clone());
                                return Some(cycle);
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        None
    }
}

/// Parse the depgraph spec. Lines: `crate: dep dep …` and
/// `dev crate: dep dep …`; `#` comments; blank lines ignored.
pub fn parse_depgraph(text: &str) -> Result<DepSpec, String> {
    let mut spec = DepSpec::default();
    // Which (dev, crate) pairs came from explicit lines — normal lines
    // auto-create an empty dev entry, which must not count as a
    // duplicate of a later explicit `dev crate:` line.
    let mut seen: BTreeSet<(bool, String)> = BTreeSet::new();
    for (no, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (dev, line) = match line.strip_prefix("dev ") {
            Some(rest) => (true, rest.trim()),
            None => (false, line),
        };
        let Some((name, deps)) = line.split_once(':') else {
            return Err(format!(
                "depgraph.spec line {}: expected `crate: deps…`",
                no + 1
            ));
        };
        let name = name.trim().to_owned();
        let set: BTreeSet<String> = deps.split_whitespace().map(str::to_owned).collect();
        if !seen.insert((dev, name.clone())) {
            return Err(format!(
                "depgraph.spec line {}: duplicate entry for `{name}`",
                no + 1
            ));
        }
        let table = if dev { &mut spec.dev } else { &mut spec.deps };
        table.insert(name.clone(), set);
        if !dev {
            spec.dev.entry(name).or_default();
        }
    }
    // Every `dev` line needs a normal line so `crates()` is complete.
    for name in spec.dev.keys() {
        if !spec.deps.contains_key(name) {
            return Err(format!(
                "depgraph.spec: `dev {name}:` has no matching `{name}:` line"
            ));
        }
    }
    Ok(spec)
}

/// One registered environment variable.
#[derive(Debug, Clone)]
pub struct EnvVar {
    /// Variable name (`SWIM_OBS`).
    pub name: String,
    /// Human description (used verbatim in the README table).
    pub description: String,
    /// 1-based line in the registry file.
    pub line: u32,
}

/// Parse `docs/env-registry.txt`: `NAME  description` per line, `#`
/// comments.
pub fn parse_env_registry(text: &str) -> Result<Vec<EnvVar>, String> {
    let mut out: Vec<EnvVar> = Vec::new();
    for (no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, desc) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| format!("env-registry line {}: expected `NAME description`", no + 1))?;
        if out.iter().any(|v| v.name == name) {
            return Err(format!("env-registry line {}: duplicate `{name}`", no + 1));
        }
        out.push(EnvVar {
            name: name.to_owned(),
            description: desc.trim().to_owned(),
            line: no as u32 + 1,
        });
    }
    Ok(out)
}

/// Render the registry as the markdown table embedded in README.md
/// between the `env-registry` markers.
pub fn env_readme_table(vars: &[EnvVar]) -> String {
    let mut out = String::from("| Variable | Meaning |\n| --- | --- |\n");
    for v in vars {
        out.push_str(&format!("| `{}` | {} |\n", v.name, v.description));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_spec_lines() {
        let spec = parse_depgraph("# c\na: b\nb:\ndev a: c\nc:\n").unwrap();
        assert!(spec.deps["a"].contains("b"));
        assert!(spec.dev["a"].contains("c"));
        assert!(spec.deps["b"].is_empty());
        assert_eq!(spec.crates().len(), 3);
    }

    #[test]
    fn reachability_walks_transitively() {
        let spec = parse_depgraph("a: b\nb: c\nc:\nd:\ndev d: a\n").unwrap();
        assert!(spec.reaches("a", "c", false));
        assert!(!spec.reaches("c", "a", false));
        assert!(!spec.reaches("d", "c", false));
        assert!(spec.reaches("d", "c", true));
    }

    #[test]
    fn cycle_detection() {
        let spec = parse_depgraph("a: b\nb: c\nc: a\n").unwrap();
        let cycle = spec.find_cycle().unwrap();
        assert!(cycle.len() >= 3, "{cycle:?}");
        let acyclic = parse_depgraph("a: b\nb: c\nc:\n").unwrap();
        assert!(acyclic.find_cycle().is_none());
    }

    #[test]
    fn env_registry_roundtrip() {
        let vars = parse_env_registry("# hdr\nSWIM_OBS  mask of things\nSWIM_X  other\n").unwrap();
        assert_eq!(vars.len(), 2);
        assert_eq!(vars[0].name, "SWIM_OBS");
        let table = env_readme_table(&vars);
        assert!(table.contains("| `SWIM_OBS` | mask of things |"));
    }

    #[test]
    fn duplicate_env_is_an_error() {
        assert!(parse_env_registry("SWIM_A  x\nSWIM_A  y\n").is_err());
    }
}
