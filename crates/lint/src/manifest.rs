//! A deliberately tiny `Cargo.toml` reader.
//!
//! The layering rule needs three things from a manifest: the package
//! name, the `[dependencies]` key set, and the `[dev-dependencies]` key
//! set — plus the `members` array from the workspace root. The
//! workspace's manifests are plain (no target-specific tables, no
//! inline multi-line gymnastics), so a line-oriented scan with a
//! quote-aware comment stripper covers them exactly.

use std::collections::BTreeSet;

/// The subset of a manifest the lint needs.
#[derive(Debug, Default)]
pub struct Manifest {
    /// `package.name`, if the file declares a package.
    pub name: Option<String>,
    /// `[dependencies]` keys (the part before `.` or `=`).
    pub deps: BTreeSet<String>,
    /// `[dev-dependencies]` keys.
    pub dev_deps: BTreeSet<String>,
    /// `[workspace] members`, in file order.
    pub members: Vec<String>,
}

/// Strip a `#` comment, honouring double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Extract all double-quoted strings from `text`.
fn quoted_strings(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find('"') {
        let after = &rest[start + 1..];
        let Some(end) = after.find('"') else { break };
        out.push(after[..end].to_owned());
        rest = &after[end + 1..];
    }
    out
}

/// Parse manifest `text`. Never fails: unknown structure is ignored,
/// which is the right behaviour for a linter that only audits known
/// tables.
pub fn parse(text: &str) -> Manifest {
    let mut m = Manifest::default();
    let mut section = String::new();
    let mut collecting_members = false;
    let mut member_buf = String::new();

    for raw in text.lines() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if collecting_members {
            member_buf.push_str(line);
            member_buf.push('\n');
            if line.contains(']') {
                collecting_members = false;
                m.members = quoted_strings(&member_buf);
            }
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_owned();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        match section.as_str() {
            "package" if key == "name" => {
                m.name = quoted_strings(value).into_iter().next();
            }
            "workspace" if key == "members" => {
                if value.contains(']') {
                    m.members = quoted_strings(value);
                } else {
                    collecting_members = true;
                    member_buf = value.to_owned();
                }
            }
            "dependencies" | "dev-dependencies" => {
                // `serde.workspace = true` and `serde = { … }` both name
                // the dependency before the first `.`.
                let dep = key.split('.').next().unwrap_or(key).trim().to_owned();
                if !dep.is_empty() {
                    if section == "dependencies" {
                        m.deps.insert(dep);
                    } else {
                        m.dev_deps.insert(dep);
                    }
                }
            }
            _ => {}
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_package_and_deps() {
        let m = parse(
            "[package]\nname = \"swim-store\"\n\n[dependencies]\nswim-obs.workspace = true\n\
             swim-trace = { path = \"../trace\" }\n\n[dev-dependencies]\nproptest.workspace = true\n",
        );
        assert_eq!(m.name.as_deref(), Some("swim-store"));
        assert_eq!(
            m.deps.iter().collect::<Vec<_>>(),
            ["swim-obs", "swim-trace"]
        );
        assert_eq!(m.dev_deps.iter().collect::<Vec<_>>(), ["proptest"]);
    }

    #[test]
    fn parses_multiline_members_with_comments() {
        let m = parse(
            "[workspace]\nresolver = \"2\"\nmembers = [\n    \"crates/a\", # trailing\n    \
             \"crates/b\",\n]\n",
        );
        assert_eq!(m.members, ["crates/a", "crates/b"]);
    }

    #[test]
    fn default_members_are_not_members() {
        let m = parse(
            "[workspace]\ndefault-members = [\".\", \"crates/a\"]\nmembers = [\"crates/a\"]\n",
        );
        assert_eq!(m.members, ["crates/a"]);
    }

    #[test]
    fn comment_hash_inside_string_survives() {
        let m = parse("[package]\nname = \"has#hash\"\n");
        assert_eq!(m.name.as_deref(), Some("has#hash"));
    }
}
