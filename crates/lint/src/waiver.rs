//! `// lint:` directives: narrowly-scoped waivers and atomics
//! justifications.
//!
//! Two forms, both plain line comments (`//` — doc comments are prose,
//! not policy):
//!
//! * `// lint: allow(rule, "reason")` — waive one rule's findings on one
//!   line. A trailing comment waives the line it sits on; a comment
//!   alone on a line waives exactly the next line. A waiver without a
//!   reason, with an unknown rule, or that matches no finding is itself
//!   a finding — waivers never rot silently.
//! * `// lint: ordering: reason` — the justification the atomics rule
//!   (`ordering`) requires next to every `Ordering::…` outside the
//!   allowlisted modules. Same line attachment rules.
//!
//! Directives inside `#[cfg(test)]` scope are ignored entirely (rules
//! don't fire there, so a waiver would be unused by construction).

use crate::lex::{Tok, TokKind};
use crate::rules::RuleId;

/// One parsed `allow` waiver.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule being waived.
    pub rule: RuleId,
    /// 1-based line the waiver applies to.
    pub line: u32,
    /// The quoted reason (non-empty by construction).
    pub reason: String,
    /// Set once a finding consumed this waiver.
    pub used: bool,
}

/// One `ordering:` justification.
#[derive(Debug, Clone)]
pub struct Justify {
    /// 1-based line the justification applies to.
    pub line: u32,
    /// Set once an `Ordering::` use consumed it.
    pub used: bool,
}

/// All directives of one file, plus any malformed ones.
#[derive(Debug, Default)]
pub struct Waivers {
    /// Well-formed `allow` waivers.
    pub allows: Vec<Allow>,
    /// Well-formed `ordering:` justifications.
    pub justifies: Vec<Justify>,
    /// `(line, message)` for malformed directives — reported as findings
    /// under [`RuleId::Waiver`].
    pub errors: Vec<(u32, String)>,
}

impl Waivers {
    /// Consume a waiver for `(rule, line)` if one exists; returns the
    /// reason. Several findings on one line may share one waiver.
    pub fn consume(&mut self, rule: RuleId, line: u32) -> Option<String> {
        for a in &mut self.allows {
            if a.rule == rule && a.line == line {
                a.used = true;
                return Some(a.reason.clone());
            }
        }
        None
    }

    /// Consume an ordering justification for `line`.
    pub fn consume_justify(&mut self, line: u32) -> bool {
        for j in &mut self.justifies {
            if j.line == line {
                j.used = true;
                return true;
            }
        }
        false
    }
}

/// Extract every directive from a token stream. `test_mask` comes from
/// [`crate::scope::analyze`]; `whole_file_test` is true for files whose
/// kind is already test-only (`tests/`, `benches/`).
pub fn collect(toks: &[Tok], test_mask: &[bool], whole_file_test: bool) -> Waivers {
    let mut out = Waivers::default();
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::LineComment {
            continue;
        }
        if whole_file_test || test_mask[i] {
            continue;
        }
        let body = &tok.text[2..]; // strip `//`
        if body.starts_with('/') || body.starts_with('!') {
            continue; // doc comment
        }
        let Some(directive) = body.trim().strip_prefix("lint:") else {
            continue;
        };
        // Trailing comment → this line; standalone comment → next line.
        let standalone = !toks[..i]
            .iter()
            .any(|t| !t.is_comment() && t.line == tok.line);
        let target = if standalone { tok.line + 1 } else { tok.line };
        parse_directive(directive.trim(), tok.line, target, &mut out);
    }
    out
}

fn parse_directive(directive: &str, comment_line: u32, target: u32, out: &mut Waivers) {
    if let Some(rest) = directive.strip_prefix("allow") {
        parse_allow(rest.trim_start(), comment_line, target, out);
    } else if let Some(reason) = directive.strip_prefix("ordering:") {
        if reason.trim().is_empty() {
            out.errors.push((
                comment_line,
                "ordering justification has no reason (`// lint: ordering: why this \
                 memory order is sufficient`)"
                    .to_owned(),
            ));
        } else {
            out.justifies.push(Justify {
                line: target,
                used: false,
            });
        }
    } else {
        out.errors.push((
            comment_line,
            format!(
                "unknown lint directive `{}` (expected `allow(rule, \"reason\")` or \
                 `ordering: reason`)",
                directive
            ),
        ));
    }
}

fn parse_allow(rest: &str, comment_line: u32, target: u32, out: &mut Waivers) {
    let malformed = |out: &mut Waivers| {
        out.errors.push((
            comment_line,
            "malformed waiver (expected `// lint: allow(rule, \"reason\")`)".to_owned(),
        ));
    };
    let Some(inner) = rest.strip_prefix('(') else {
        return malformed(out);
    };
    let Some(close) = inner.rfind(')') else {
        return malformed(out);
    };
    let inner = &inner[..close];
    let (rule_text, reason_part) = match inner.split_once(',') {
        Some((r, rest)) => (r.trim(), Some(rest.trim())),
        None => (inner.trim(), None),
    };
    let Some(rule) = RuleId::waivable_from_str(rule_text) else {
        out.errors.push((
            comment_line,
            format!(
                "unknown rule `{rule_text}` in waiver (one of: {})",
                RuleId::WAIVABLE_NAMES.join(", ")
            ),
        ));
        return;
    };
    let Some(reason_part) = reason_part else {
        out.errors.push((
            comment_line,
            format!(
                "waiver for `{}` has no reason — a waiver must say why",
                rule.id()
            ),
        ));
        return;
    };
    // The reason must be a non-empty quoted string.
    let reason = reason_part
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        out.errors.push((
            comment_line,
            format!(
                "waiver for `{}` has no reason — a waiver must say why",
                rule.id()
            ),
        ));
        return;
    }
    out.allows.push(Allow {
        rule,
        line: target,
        reason: reason.to_owned(),
        used: false,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::scope::analyze;

    fn collect_src(src: &str) -> Waivers {
        let toks = lex(src).unwrap();
        let scopes = analyze(&toks);
        collect(&toks, &scopes.test_mask, false)
    }

    #[test]
    fn trailing_waiver_targets_its_own_line() {
        let w = collect_src("let x = v[0]; // lint: allow(panic, \"len checked above\")\n");
        assert_eq!(w.allows.len(), 1);
        assert_eq!(w.allows[0].line, 1);
        assert_eq!(w.allows[0].rule, RuleId::Panic);
        assert_eq!(w.allows[0].reason, "len checked above");
    }

    #[test]
    fn standalone_waiver_targets_next_line() {
        let w = collect_src("// lint: allow(clock, \"bench harness\")\nlet t = now();\n");
        assert_eq!(w.allows.len(), 1);
        assert_eq!(w.allows[0].line, 2);
    }

    #[test]
    fn missing_reason_is_an_error() {
        let w = collect_src("// lint: allow(panic)\n");
        assert!(w.allows.is_empty());
        assert_eq!(w.errors.len(), 1);
        assert!(w.errors[0].1.contains("no reason"), "{:?}", w.errors);
    }

    #[test]
    fn empty_reason_is_an_error() {
        let w = collect_src("// lint: allow(panic, \"\")\n");
        assert!(w.allows.is_empty());
        assert_eq!(w.errors.len(), 1);
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let w = collect_src("// lint: allow(frobnication, \"because\")\n");
        assert!(w.allows.is_empty());
        assert!(w.errors[0].1.contains("unknown rule `frobnication`"));
    }

    #[test]
    fn waiver_rule_cannot_be_waiver() {
        let w = collect_src("// lint: allow(waiver, \"meta\")\n");
        assert!(w.allows.is_empty());
        assert_eq!(w.errors.len(), 1);
    }

    #[test]
    fn ordering_justification_parses() {
        let w = collect_src(
            "x.store(1, Ordering::Relaxed); // lint: ordering: counter, no ordering needed\n",
        );
        assert_eq!(w.justifies.len(), 1);
        assert_eq!(w.justifies[0].line, 1);
    }

    #[test]
    fn ordering_without_reason_is_an_error() {
        let w = collect_src("// lint: ordering:\n");
        assert!(w.justifies.is_empty());
        assert_eq!(w.errors.len(), 1);
    }

    #[test]
    fn directives_in_test_scope_are_ignored() {
        let w = collect_src(
            "#[cfg(test)]\nmod tests {\n  // lint: allow(panic, \"test\")\n  fn f() {}\n}\n",
        );
        assert!(w.allows.is_empty() && w.errors.is_empty());
    }

    #[test]
    fn doc_comments_are_not_directives() {
        let w = collect_src("/// lint: allow(panic, \"doc\")\nfn f() {}\n");
        assert!(w.allows.is_empty() && w.errors.is_empty());
    }

    #[test]
    fn unknown_directive_is_an_error() {
        let w = collect_src("// lint: deny(panic)\n");
        assert_eq!(w.errors.len(), 1);
        assert!(w.errors[0].1.contains("unknown lint directive"));
    }
}
