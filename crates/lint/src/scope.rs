//! Token-stream structure: which tokens are test-scoped, and which
//! function encloses a given token.
//!
//! Rules that say "non-test library code" need to know that a token
//! lives under `#[cfg(test)] mod tests { … }` or `#[test] fn … { … }`.
//! Rather than parse items, we walk the token stream: an attribute whose
//! contents mention `test` (`#[test]`, `#[cfg(test)]`,
//! `#[cfg(all(test, …))]`) marks the *next item* — everything up to the
//! matching close brace of the item's body, or its terminating `;` —
//! as test-scoped.
//!
//! The same walk records `fn` body spans so the durability rule can ask
//! "is this `fs::rename` inside one of the publish helpers?".

use crate::lex::{Tok, TokKind};

/// Structure extracted from one file's token stream.
pub struct Scopes {
    /// `mask[i]` is `true` when token `i` is inside a `#[test]`/
    /// `#[cfg(test)]` item.
    pub test_mask: Vec<bool>,
    /// `(name, start, end)` token-index spans of every `fn` body,
    /// innermost-last for any given token.
    pub fns: Vec<(String, usize, usize)>,
}

impl Scopes {
    /// The name of the innermost function whose body contains token `i`,
    /// if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<&str> {
        self.fns
            .iter()
            .filter(|(_, s, e)| *s <= i && i <= *e)
            .min_by_key(|(_, s, e)| e - s)
            .map(|(n, _, _)| n.as_str())
    }
}

/// Indices of non-comment tokens, in order — structure scanning ignores
/// comments entirely (a `{` in a comment is just text).
fn code_indices(toks: &[Tok]) -> Vec<usize> {
    (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect()
}

/// Analyze one token stream.
pub fn analyze(toks: &[Tok]) -> Scopes {
    let code = code_indices(toks);
    let mut test_mask = vec![false; toks.len()];
    let mut fns = Vec::new();

    // Pass 1: attributes → test ranges.
    let mut c = 0usize;
    while c < code.len() {
        if toks[code[c]].is_punct("#") && c + 1 < code.len() && toks[code[c + 1]].is_punct("[") {
            let Some(attr_close) = match_open(toks, &code, c + 1, "[", "]") else {
                break; // malformed; stop attributing, rules still run
            };
            let is_test = attr_is_test(toks, &code[c + 2..attr_close]);
            if is_test {
                // Skip any further attributes on the same item.
                let mut j = attr_close + 1;
                while j + 1 < code.len()
                    && toks[code[j]].is_punct("#")
                    && toks[code[j + 1]].is_punct("[")
                {
                    match match_open(toks, &code, j + 1, "[", "]") {
                        Some(close) => j = close + 1,
                        None => break,
                    }
                }
                let end = item_end(toks, &code, j).unwrap_or(code.len() - 1);
                for &tok_idx in &code[c..=end] {
                    test_mask[tok_idx] = true;
                }
                // Comment tokens interleaved in the range count too.
                if let (Some(&first), Some(&last)) = (code.get(c), code.get(end)) {
                    for (idx, mask) in test_mask.iter_mut().enumerate() {
                        if idx >= first && idx <= last && toks[idx].is_comment() {
                            *mask = true;
                        }
                    }
                }
                c = end + 1;
                continue;
            }
            c = attr_close + 1;
            continue;
        }
        c += 1;
    }

    // Pass 2: `fn name … { body }` spans (over code tokens; bodies nest).
    let mut c = 0usize;
    while c < code.len() {
        if toks[code[c]].is_ident("fn")
            && c + 1 < code.len()
            && toks[code[c + 1]].kind == TokKind::Ident
        {
            let name = toks[code[c + 1]].text.clone();
            if let Some((open, close)) = fn_body(toks, &code, c + 2) {
                fns.push((name, code[open], code[close]));
            }
        }
        c += 1;
    }

    Scopes { test_mask, fns }
}

/// Does an attribute's token slice mark a test item? True for `test`
/// alone and for `cfg(… test …)`.
fn attr_is_test(toks: &[Tok], inner: &[usize]) -> bool {
    let idents: Vec<&str> = inner
        .iter()
        .filter(|&&i| toks[i].kind == TokKind::Ident)
        .map(|&i| toks[i].text.as_str())
        .collect();
    match idents.first() {
        Some(&"test") => true,
        Some(&"cfg") => idents[1..].contains(&"test"),
        _ => false,
    }
}

/// Given `code[open_idx]` an opening delimiter, return the code-index of
/// its matching close, tracking all three delimiter kinds.
fn match_open(
    toks: &[Tok],
    code: &[usize],
    open_idx: usize,
    open: &str,
    close: &str,
) -> Option<usize> {
    let mut depth = 0i32;
    for (k, &ti) in code.iter().enumerate().skip(open_idx) {
        if toks[ti].is_punct(open) {
            depth += 1;
        } else if toks[ti].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Where does the item starting at `code[from]` end? At the first `;` at
/// delimiter depth 0 (use/const/static/type items), or at the brace
/// matching the first `{` at depth 0 (mod/fn/impl/struct bodies).
fn item_end(toks: &[Tok], code: &[usize], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, &ti) in code.iter().enumerate().skip(from) {
        let t = &toks[ti];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if depth == 0 && t.is_punct(";") {
            return Some(k);
        } else if depth == 0 && t.is_punct("{") {
            return match_open(toks, code, k, "{", "}");
        }
    }
    None
}

/// Find a fn's body braces starting after its name: the first `{` at
/// paren/bracket depth 0, unless a `;` (trait method declaration) comes
/// first. Returns code-indices of `{` and `}`.
fn fn_body(toks: &[Tok], code: &[usize], from: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    for (k, &ti) in code.iter().enumerate().skip(from) {
        let t = &toks[ti];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if depth == 0 && t.is_punct(";") {
            return None;
        } else if depth == 0 && t.is_punct("{") {
            let close = match_open(toks, code, k, "{", "}")?;
            return Some((k, close));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn mask_for(src: &str, ident: &str) -> bool {
        let toks = lex(src).unwrap();
        let scopes = analyze(&toks);
        let idx = toks
            .iter()
            .position(|t| t.is_ident(ident))
            .unwrap_or_else(|| panic!("{ident} not found"));
        scopes.test_mask[idx]
    }

    #[test]
    fn cfg_test_mod_is_test_scoped() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n fn inner() { target(); }\n}\nfn after() {}";
        assert!(mask_for(src, "target"));
        assert!(!mask_for(src, "live"));
        assert!(!mask_for(src, "after"));
    }

    #[test]
    fn test_attr_fn_is_test_scoped() {
        let src = "#[test]\nfn check() { victim(); }\nfn real() { keeper(); }";
        assert!(mask_for(src, "victim"));
        assert!(!mask_for(src, "keeper"));
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod m { fn t() { inside(); } }";
        assert!(mask_for(src, "inside"));
    }

    #[test]
    fn non_test_cfg_does_not_scope() {
        let src = "#[cfg(unix)]\nfn platform() { body(); }";
        assert!(!mask_for(src, "body"));
    }

    #[test]
    fn stacked_attributes_extend_to_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn t() { hidden(); }\nfn live() {}";
        assert!(mask_for(src, "hidden"));
        assert!(!mask_for(src, "live"));
    }

    #[test]
    fn semicolon_item_scope_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() { after(); }";
        assert!(mask_for(src, "HashMap"));
        assert!(!mask_for(src, "after"));
    }

    #[test]
    fn enclosing_fn_names() {
        let toks = lex("fn outer() { helper(); } fn write_manifest() { rename(); }").unwrap();
        let scopes = analyze(&toks);
        let rename = toks.iter().position(|t| t.is_ident("rename")).unwrap();
        assert_eq!(scopes.enclosing_fn(rename), Some("write_manifest"));
        let helper = toks.iter().position(|t| t.is_ident("helper")).unwrap();
        assert_eq!(scopes.enclosing_fn(helper), Some("outer"));
    }

    #[test]
    fn nested_fn_innermost_wins() {
        let toks = lex("fn outer() { fn inner() { x(); } }").unwrap();
        let scopes = analyze(&toks);
        let x = toks.iter().position(|t| t.is_ident("x")).unwrap();
        assert_eq!(scopes.enclosing_fn(x), Some("inner"));
    }
}
