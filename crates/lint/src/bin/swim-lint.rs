//! `swim-lint`: workspace-aware static analysis enforcing the SWIM
//! repo's layering, panic-policy, clock, atomics, durability, and
//! env-registry invariants.
//!
//! ```text
//! swim-lint [--root DIR] [--format text|md|json] [--deny]
//! swim-lint --print-env-table [--root DIR]
//! ```
//!
//! Exit codes: `0` clean (or findings without `--deny`), `1` findings
//! under `--deny` or a runtime failure (unreadable workspace,
//! unlexable file), `2` usage errors. `--print-env-table` renders the
//! README markdown table from `docs/env-registry.txt` and exits.

use std::process::ExitCode;

const USAGE: &str = "usage: swim-lint [--root DIR] [--format text|md|json] [--deny]\n\
 swim-lint --print-env-table [--root DIR]\n\
 --root DIR           workspace root to lint (default: current directory)\n\
 --format text|md|json  report format (default: text)\n\
 --deny               exit 1 if any finding survives (CI mode)\n\
 --print-env-table    render the README env-var table from docs/env-registry.txt\n\
 rules: layering panic clock ordering durability env (+ waiver hygiene)\n\
 waive a finding with `// lint: allow(rule, \"reason\")` on or above the line";

enum Format {
    Text,
    Markdown,
    Json,
}

struct Args {
    root: String,
    format: Format,
    deny: bool,
    print_env_table: bool,
}

/// `Ok(None)` means `--help` was requested.
fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        root: ".".to_owned(),
        format: Format::Text,
        deny: false,
        print_env_table: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => {
                args.root = iter.next().ok_or("--root requires a value")?;
            }
            "--format" => {
                args.format = match iter.next().ok_or("--format requires a value")?.as_str() {
                    "text" => Format::Text,
                    "md" | "markdown" => Format::Markdown,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (text|md|json)")),
                };
            }
            "--deny" => args.deny = true,
            "--print-env-table" => args.print_env_table = true,
            "--help" | "-h" => return Ok(None),
            flag => return Err(format!("unknown argument {flag}")),
        }
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Ok(Some(a)) => a,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    swim_obs::init_from_env();
    let root = std::path::Path::new(&args.root);
    if args.print_env_table {
        return match swim_lint::env_table(root) {
            Ok(table) => {
                print!("{table}");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    let result = match swim_lint::run(root) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let rendered = match args.format {
        Format::Text => swim_lint::report::render_text(&result),
        Format::Markdown => swim_lint::report::render_markdown(&result),
        Format::Json => swim_lint::report::render_json(&result),
    };
    print!("{rendered}");
    if let Err(e) = swim_obs::jsonl::append_env(&swim_obs::snapshot()) {
        eprintln!("warning: SWIM_OBS_JSONL: {e}");
    }
    if args.deny && !result.is_clean() {
        eprintln!(
            "error: swim-lint: {} finding(s) denied (see report above)",
            result.findings.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
