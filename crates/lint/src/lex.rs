//! A hand-rolled lexer for (a linting superset of) Rust.
//!
//! The rule engine never needs a parse tree — every workspace rule is a
//! pattern over a token stream plus a little brace matching — so this
//! lexer produces a flat `Vec<Tok>` with line numbers and nothing else.
//! What it *does* have to get right is everything that would make a
//! regex-based scanner lie:
//!
//! * raw strings (`r"…"`, `r#"…"#` with any number of hashes, plus the
//!   `b`/`br`/`c`/`cr` prefixes), so `unwrap` inside a string never
//!   counts as a call;
//! * nested block comments (`/* /* */ */` — Rust nests them, C doesn't);
//! * `'a` lifetimes vs `'a'` char literals (one lookahead past the
//!   identifier run decides);
//! * raw identifiers (`r#fn`) vs raw strings (`r#"…"#`);
//! * byte/char escapes (`'\''`, `"\""`) and multi-line strings, so line
//!   numbers stay exact afterwards.
//!
//! Tokens own their text; lint inputs are source files, where clarity
//! beats zero-copy.

use std::fmt;

/// Token classification — exactly as fine-grained as the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `fn`, `Ordering`, `r#try`).
    Ident,
    /// `'a`, `'static`, `'_` — a quote followed by an identifier with no
    /// closing quote.
    Lifetime,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// Any string literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`. `text()`
    /// returns the *unquoted* contents.
    Str,
    /// Numeric literal (`0x1f`, `1_000u64`, `2.5`).
    Num,
    /// `// …` comment, doc or plain. `text()` includes the slashes.
    LineComment,
    /// `/* … */` comment (possibly nested). `text()` includes delimiters.
    BlockComment,
    /// Punctuation. Multi-character only for `::`; everything else is a
    /// single character.
    Punct,
}

/// One token: kind, owned text, and the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What the token is.
    pub kind: TokKind,
    /// The token text (unquoted contents for [`TokKind::Str`]).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// `true` for line and block comments.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// `true` when the token is punctuation with exactly this text.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }

    /// `true` when the token is an identifier with exactly this text.
    pub fn is_ident(&self, id: &str) -> bool {
        self.kind == TokKind::Ident && self.text == id
    }
}

/// A lexing failure: unterminated string/comment/char. Well-formed Rust
/// never produces one; fixtures with broken code surface it as a
/// finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line where the unterminated construct starts.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

struct Lexer<'a> {
    src: &'a str,
    b: &'a [u8],
    i: usize,
    line: u32,
    toks: Vec<Tok>,
}

/// Tokenize `src`. Returns every token including comments; whitespace is
/// dropped. Fails only on unterminated strings/comments/chars.
pub fn lex(src: &str) -> Result<Vec<Tok>, LexError> {
    let mut lx = Lexer {
        src,
        b: src.as_bytes(),
        i: 0,
        line: 1,
        toks: Vec::new(),
    };
    lx.run()?;
    Ok(lx.toks)
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, text: &str, line: u32) {
        self.toks.push(Tok {
            kind,
            text: text.to_owned(),
            line,
        });
    }

    fn err(&self, line: u32, msg: &str) -> LexError {
        LexError {
            line,
            msg: msg.to_owned(),
        }
    }

    fn run(&mut self) -> Result<(), LexError> {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment()?,
                b'"' => self.string(self.i, false)?,
                b'\'' => self.char_or_lifetime()?,
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(c) => self.ident_or_prefixed()?,
                _ => self.punct(),
            }
        }
        Ok(())
    }

    fn line_comment(&mut self) {
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
        let line = self.line;
        self.push(TokKind::LineComment, &self.src[start..self.i], line);
    }

    fn block_comment(&mut self) -> Result<(), LexError> {
        let start = self.i;
        let start_line = self.line;
        let mut depth = 1u32;
        self.i += 2;
        while self.i < self.b.len() && depth > 0 {
            if self.b[self.i] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.i += 2;
            } else if self.b[self.i] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.i += 2;
            } else {
                if self.b[self.i] == b'\n' {
                    self.line += 1;
                }
                self.i += 1;
            }
        }
        if depth > 0 {
            return Err(self.err(start_line, "unterminated block comment"));
        }
        self.push(TokKind::BlockComment, &self.src[start..self.i], start_line);
        Ok(())
    }

    /// Lex a (possibly prefixed) non-raw string starting at the opening
    /// quote `self.i`; `content_from` marks where the token conceptually
    /// starts (the prefix) for error reporting only.
    fn string(&mut self, token_start: usize, _byte: bool) -> Result<(), LexError> {
        let start_line = self.line;
        self.i += 1; // opening quote
        let content_start = self.i;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'"' => {
                    let text = self.src[content_start..self.i].to_owned();
                    self.i += 1;
                    self.push(TokKind::Str, &text, start_line);
                    let _ = token_start;
                    return Ok(());
                }
                b'\\' => {
                    // Skip the escaped character (handles \" and \\; a
                    // multi-byte \u{…} is fine: braces aren't quotes).
                    self.i += 2;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        Err(self.err(start_line, "unterminated string literal"))
    }

    /// Lex a raw string; `self.i` sits on the first `#` or the opening
    /// quote (after the `r`/`br`/`cr` prefix).
    fn raw_string(&mut self) -> Result<(), LexError> {
        let start_line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.i += 1;
        }
        if self.peek(0) != Some(b'"') {
            return Err(self.err(start_line, "malformed raw string start"));
        }
        self.i += 1;
        let content_start = self.i;
        while self.i < self.b.len() {
            if self.b[self.i] == b'"' {
                let after = &self.b[self.i + 1..];
                if after.len() >= hashes && after[..hashes].iter().all(|&c| c == b'#') {
                    let text = self.src[content_start..self.i].to_owned();
                    self.i += 1 + hashes;
                    self.push(TokKind::Str, &text, start_line);
                    return Ok(());
                }
            }
            if self.b[self.i] == b'\n' {
                self.line += 1;
            }
            self.i += 1;
        }
        Err(self.err(start_line, "unterminated raw string literal"))
    }

    /// `'` starts either a char literal or a lifetime. The decider: after
    /// an identifier run, a closing `'` means char (`'a'`); anything else
    /// means lifetime (`'a`, `'static`, `'_`).
    fn char_or_lifetime(&mut self) -> Result<(), LexError> {
        let start_line = self.line;
        let quote = self.i;
        self.i += 1;
        match self.peek(0) {
            None => Err(self.err(start_line, "unterminated char literal")),
            Some(b'\\') => {
                // Escaped char literal: skip escape, then scan to the
                // closing quote (covers '\n', '\'', '\u{1F600}').
                self.i += 2;
                while self.i < self.b.len() && self.b[self.i] != b'\'' {
                    if self.b[self.i] == b'\n' {
                        return Err(self.err(start_line, "unterminated char literal"));
                    }
                    self.i += 1;
                }
                if self.i >= self.b.len() {
                    return Err(self.err(start_line, "unterminated char literal"));
                }
                self.i += 1;
                self.push(TokKind::Char, &self.src[quote..self.i], start_line);
                Ok(())
            }
            Some(c) if is_ident_start(c) => {
                let mut j = self.i;
                while j < self.b.len() && is_ident_cont(self.b[j]) {
                    j += 1;
                }
                if self.b.get(j) == Some(&b'\'') {
                    // 'a' — char literal.
                    self.i = j + 1;
                    self.push(TokKind::Char, &self.src[quote..self.i], start_line);
                } else {
                    // 'a / 'static / '_ — lifetime; no closing quote.
                    let text = self.src[quote..j].to_owned();
                    self.i = j;
                    self.push(TokKind::Lifetime, &text, start_line);
                }
                Ok(())
            }
            Some(_) => {
                // Non-identifier char literal: '(' , '0', '🦀' (multi-byte
                // is fine — we scan to the closing quote).
                while self.i < self.b.len() && self.b[self.i] != b'\'' {
                    if self.b[self.i] == b'\n' {
                        return Err(self.err(start_line, "unterminated char literal"));
                    }
                    self.i += 1;
                }
                if self.i >= self.b.len() {
                    return Err(self.err(start_line, "unterminated char literal"));
                }
                self.i += 1;
                self.push(TokKind::Char, &self.src[quote..self.i], start_line);
                Ok(())
            }
        }
    }

    fn number(&mut self) {
        let start = self.i;
        let line = self.line;
        while self.i < self.b.len() && is_ident_cont(self.b[self.i]) {
            self.i += 1;
        }
        // A fractional part only if `.` is followed by a digit — this is
        // what keeps `0..4` three tokens instead of a mangled float.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
            while self.i < self.b.len() && is_ident_cont(self.b[self.i]) {
                self.i += 1;
            }
        }
        self.push(TokKind::Num, &self.src[start..self.i], line);
    }

    /// An identifier — unless it is a string prefix (`r"`, `b"`, `br#"`,
    /// `c"`, `cr"`), a raw identifier (`r#fn`), or a byte char (`b'x'`).
    fn ident_or_prefixed(&mut self) -> Result<(), LexError> {
        let start = self.i;
        let line = self.line;
        let mut j = self.i;
        while j < self.b.len() && is_ident_cont(self.b[j]) {
            j += 1;
        }
        let word = &self.src[start..j];
        let next = self.b.get(j).copied();
        match (word, next) {
            ("r" | "br" | "cr", Some(b'"')) => {
                self.i = j;
                return self.raw_string();
            }
            ("r" | "br" | "cr", Some(b'#')) => {
                // `r#"…"#` raw string, or `r#ident` raw identifier.
                let mut k = j;
                while self.b.get(k) == Some(&b'#') {
                    k += 1;
                }
                if self.b.get(k) == Some(&b'"') {
                    self.i = j;
                    return self.raw_string();
                }
                if word == "r" && self.b.get(k).copied().is_some_and(is_ident_start) {
                    let mut m = k;
                    while m < self.b.len() && is_ident_cont(self.b[m]) {
                        m += 1;
                    }
                    // Keep the `r#` in the text: `r#try` is not `try` to
                    // any rule, which is exactly right.
                    self.i = m;
                    self.push(TokKind::Ident, &self.src[start..m], line);
                    return Ok(());
                }
                // `r #[…]` etc — plain ident, punct handled next loop.
                self.i = j;
                self.push(TokKind::Ident, word, line);
                return Ok(());
            }
            ("b" | "c", Some(b'"')) => {
                self.i = j;
                return self.string(start, true);
            }
            ("b", Some(b'\'')) => {
                self.i = j;
                return self.char_or_lifetime();
            }
            _ => {}
        }
        self.i = j;
        self.push(TokKind::Ident, word, line);
        Ok(())
    }

    fn punct(&mut self) {
        let line = self.line;
        if self.b[self.i] == b':' && self.peek(1) == Some(b':') {
            self.i += 2;
            self.push(TokKind::Punct, "::", line);
            return;
        }
        // Multi-byte UTF-8 punctuation (→ in comments is already inside
        // comment tokens; stray non-ASCII in code is rare) — consume the
        // whole scalar so we never split a char boundary.
        let ch_len = self.src[self.i..].chars().next().map_or(1, char::len_utf8);
        let text = &self.src[self.i..self.i + ch_len];
        self.i += ch_len;
        self.push(TokKind::Punct, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .unwrap()
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let toks = kinds(r####"let x = r#"foo.unwrap()"#;"####);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t == "foo.unwrap()"));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let toks = kinds("/* a /* b */ c */ after");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert_eq!(toks[1], (TokKind::Ident, "after".to_owned()));
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let s = 'static; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 3, "{toks:?}");
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].1, "'a'");
    }

    #[test]
    fn escaped_quote_char_literal() {
        let toks = kinds(r"let q = '\''; let n = '\n'; let u = '\u{1F600}';");
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(chars.len(), 3);
    }

    #[test]
    fn range_is_not_a_float() {
        let toks = kinds("&x[0..4]");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["&", "x", "[", "0", ".", ".", "4", "]"]);
    }

    #[test]
    fn double_colon_is_one_token() {
        let toks = kinds("Instant::now()");
        assert_eq!(toks[1], (TokKind::Punct, "::".to_owned()));
    }

    #[test]
    fn raw_ident_keeps_prefix() {
        let toks = kinds("let r#try = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "r#try"));
    }

    #[test]
    fn byte_strings_and_chars() {
        let toks = kinds(r#"let a = b"bytes"; let c = b'x'; let r = br"raw";"#);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 1);
    }

    #[test]
    fn multiline_string_keeps_line_numbers() {
        let toks = lex("let s = \"a\nb\";\nnext").unwrap();
        let next = toks.iter().find(|t| t.is_ident("next")).unwrap();
        assert_eq!(next.line, 3);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("let s = \"oops").is_err());
        assert!(lex("/* never closed").is_err());
    }
}
