//! The linter's own JSON report over this repository is golden-pinned:
//! the workspace must stay finding-free, and every waiver that exists is
//! enumerated with its reason. Any new violation (or new waiver) shows
//! up as a diff here and in the CI `swim-lint --deny` job.
//!
//! Regenerate after an intentional change with
//!
//! ```sh
//! SWIM_REGEN_GOLDEN=1 cargo test -p swim-lint --test golden_workspace
//! ```

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn workspace_json_report_matches_golden() {
    let result = swim_lint::run(&repo_root()).expect("lint run");
    assert!(
        result.is_clean(),
        "the workspace must lint clean:\n{}",
        swim_lint::report::render_text(&result)
    );
    let json = swim_lint::report::render_json(&result);

    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/workspace.json");
    if std::env::var_os("SWIM_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&golden_path, &json).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with SWIM_REGEN_GOLDEN=1",
            golden_path.display()
        )
    });
    if json != golden {
        let first_diff = json
            .lines()
            .zip(golden.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(n, (a, b))| format!("line {}: got {a:?}, golden {b:?}", n + 1))
            .unwrap_or_else(|| "lengths differ".to_owned());
        panic!("lint JSON drifted from golden ({first_diff}); regenerate with SWIM_REGEN_GOLDEN=1");
    }
}
