//! Property tests for the hand-rolled lexer and the waiver parser: the
//! token stream must survive the constructs that break naive Rust
//! tokenizers (raw strings, nested block comments, lifetimes vs char
//! literals), and waiver directives must be rejected precisely.

use proptest::prelude::*;

use swim_lint::lex::{lex, TokKind};
use swim_lint::waiver;

/// Every waivable rule name, indexed by the proptest strategies below
/// (the vendored proptest has no `prop::sample::select`).
const WAIVABLE_RULES: [&str; 6] = [
    "layering",
    "panic",
    "clock",
    "ordering",
    "durability",
    "env",
];

/// Strings drawn from an explicit character palette — the vendored
/// proptest's regex shim only handles single-range classes, so
/// multi-class alphabets are sampled as index vectors instead.
fn palette(chars: &'static [char], min: usize, max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..chars.len(), min..max + 1)
        .prop_map(move |idxs| idxs.into_iter().map(|i| chars[i]).collect())
}

/// Arbitrary Unicode text (unpaired surrogate code points replaced).
fn arbitrary_text(max_len: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..0x11_0000, 0..max_len + 1).prop_map(|cs| {
        cs.into_iter()
            .map(|c| char::from_u32(c).unwrap_or('\u{FFFD}'))
            .collect()
    })
}

/// Lex and panic the test (not the lexer) on error.
fn toks(src: &str) -> Vec<swim_lint::lex::Tok> {
    lex(src).unwrap_or_else(|e| panic!("lex failed on {src:?}: {e}"))
}

const RAW_BODY: &[char] = &[
    'a', 'b', 'c', 'x', 'y', 'z', '"', '\\', ' ', '#', 'q', 'u', 'o', 't', 'e',
];
const COMMENT_BODY: &[char] = &['a', 'b', 'c', 'x', 'y', 'z', ' ', '.', ','];
const LINE_BODY: &[char] = &['a', 'b', 'c', 'x', 'y', 'z', ' ', '=', ';'];
const REASON_BODY: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'A', 'B', 'C', '0', '1', '9', ' ', 'r', 's', 'n',
];

proptest! {
    /// The lexer is total: any input either tokenizes or reports a
    /// structured error — it never panics.
    #[test]
    fn lexer_never_panics(src in arbitrary_text(120)) {
        let _ = lex(&src);
    }

    /// A raw string hides its contents from the rule engine no matter
    /// how many quotes/escapes it holds; the next token resumes cleanly.
    #[test]
    fn raw_strings_hide_contents(body in palette(RAW_BODY, 0, 24), hashes in 1usize..4) {
        let h = "#".repeat(hashes);
        // Exclude bodies that would close the raw string early.
        prop_assume!(!body.contains(&format!("\"{h}")));
        let src = format!("let s = r{h}\"{body}\"{h}; after");
        let ts = toks(&src);
        let strs: Vec<_> = ts.iter().filter(|t| t.kind == TokKind::Str).collect();
        prop_assert_eq!(strs.len(), 1);
        prop_assert!(ts.iter().any(|t| t.kind == TokKind::Ident && t.text == "after"));
    }

    /// Block comments nest to arbitrary depth and come back out.
    #[test]
    fn nested_block_comments(depth in 1usize..6, inner in palette(COMMENT_BODY, 0, 16)) {
        let src = format!(
            "{}{}{} tail",
            "/*".repeat(depth), inner, "*/".repeat(depth)
        );
        let ts = toks(&src);
        let comments = ts.iter().filter(|t| t.kind == TokKind::BlockComment).count();
        prop_assert_eq!(comments, 1);
        prop_assert!(ts.iter().any(|t| t.kind == TokKind::Ident && t.text == "tail"));
    }

    /// `'x'` is a char literal; `'x` followed by non-quote is a
    /// lifetime — for every ASCII identifier character.
    #[test]
    fn char_vs_lifetime(c in "[a-z]{1}") {
        let ch = toks(&format!("let v = '{c}';"));
        prop_assert!(ch.iter().any(|t| t.kind == TokKind::Char), "{ch:?}");
        prop_assert!(!ch.iter().any(|t| t.kind == TokKind::Lifetime));

        let lt = toks(&format!("fn f<'{c}>(x: &'{c} u8) {{}}"));
        prop_assert!(lt.iter().any(|t| t.kind == TokKind::Lifetime), "{lt:?}");
        prop_assert!(!lt.iter().any(|t| t.kind == TokKind::Char));
    }

    /// Line numbers are monotone non-decreasing and within the file.
    #[test]
    fn line_numbers_monotone(lines in prop::collection::vec(palette(LINE_BODY, 0, 12), 1..8)) {
        let src = lines.join("\n");
        if let Ok(ts) = lex(&src) {
            let mut last = 1;
            for t in &ts {
                prop_assert!(t.line >= last);
                prop_assert!(t.line as usize <= lines.len());
                last = t.line;
            }
        }
    }

    /// A well-formed waiver parses for every waivable rule name; the
    /// reason round-trips.
    #[test]
    fn waiver_roundtrip(
        rule_idx in 0usize..WAIVABLE_RULES.len(),
        reason in palette(REASON_BODY, 1, 32),
    ) {
        let rule = WAIVABLE_RULES[rule_idx];
        prop_assume!(!reason.trim().is_empty());
        let src = format!("// lint: allow({rule}, \"{reason}\")\nlet x = 1;");
        let ts = toks(&src);
        let ws = waiver::collect(&ts, &vec![false; ts.len()], false);
        prop_assert_eq!(ws.errors.len(), 0);
        prop_assert_eq!(ws.allows.len(), 1);
        // The parser trims surrounding whitespace from the reason.
        prop_assert_eq!(ws.allows[0].reason.as_str(), reason.trim());
        prop_assert_eq!(ws.allows[0].line, 2); // standalone comment targets the next line
    }

    /// A reasonless waiver is always an error, whatever the rule.
    #[test]
    fn reasonless_waiver_is_error(rule_idx in 0usize..WAIVABLE_RULES.len()) {
        let rule = WAIVABLE_RULES[rule_idx];
        let src = format!("// lint: allow({rule})\nlet x = 1;");
        let ts = toks(&src);
        let ws = waiver::collect(&ts, &vec![false; ts.len()], false);
        prop_assert_eq!(ws.allows.len(), 0);
        prop_assert_eq!(ws.errors.len(), 1);
    }

    /// Unknown rule names are rejected with the allowed list.
    #[test]
    fn unknown_rule_is_error(rule in "[a-z]{1,10}") {
        prop_assume!(!matches!(
            rule.as_str(),
            "layering" | "panic" | "clock" | "ordering" | "durability" | "env"
        ));
        let src = format!("// lint: allow({rule}, \"some reason\")\nlet x = 1;");
        let ts = toks(&src);
        let ws = waiver::collect(&ts, &vec![false; ts.len()], false);
        prop_assert_eq!(ws.allows.len(), 0);
        prop_assert_eq!(ws.errors.len(), 1);
        prop_assert!(ws.errors[0].1.contains("panic"), "error should list valid rules");
    }

    /// Directives inside `#[cfg(test)]` scope are ignored entirely —
    /// waivers belong next to production code only.
    #[test]
    fn waivers_in_test_scope_are_ignored(reason in palette(REASON_BODY, 1, 16)) {
        prop_assume!(!reason.trim().is_empty());
        let src = format!("// lint: allow(panic, \"{reason}\")\nlet x = 1;");
        let ts = toks(&src);
        // Whole file marked as test scope.
        let ws = waiver::collect(&ts, &vec![true; ts.len()], false);
        prop_assert_eq!(ws.allows.len(), 0);
        prop_assert_eq!(ws.errors.len(), 0);
        // Whole-file test target (tests/*.rs): same outcome.
        let ws = waiver::collect(&ts, &vec![false; ts.len()], true);
        prop_assert_eq!(ws.allows.len(), 0);
        prop_assert_eq!(ws.errors.len(), 0);
    }
}

/// Doc comments are not waiver carriers: `/// lint: allow(...)` text in
/// documentation must not parse as a directive (deterministic, not a
/// property — the corpus is fixed).
#[test]
fn doc_comments_are_not_directives() {
    let src = "/// lint: allow(panic, \"doc text, not a directive\")\nfn f() {}\n";
    let ts = toks(src);
    let ws = waiver::collect(&ts, &vec![false; ts.len()], false);
    assert!(ws.allows.is_empty());
    assert!(ws.errors.is_empty());
}
