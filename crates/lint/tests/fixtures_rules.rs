//! Every rule demonstrably fires on the known-bad fixture workspace and
//! stays quiet on the known-good one. The fixture sources live under
//! `tests/fixtures/` precisely because cargo never compiles them and the
//! workspace walker never collects them — they exist only to be scanned
//! here.

use std::path::PathBuf;

use swim_lint::report::render_text;
use swim_lint::rules::RuleId;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn bad_fixture_fires_every_rule() {
    let result = swim_lint::run(&fixture("bad")).expect("bad fixture loads");
    for rule in RuleId::ALL {
        assert!(
            result.findings.iter().any(|f| f.rule == rule),
            "rule `{rule}` never fired on the bad fixture:\n{}",
            render_text(&result)
        );
    }
    // The reasonless waiver must not have suppressed anything.
    assert!(result.waived.is_empty(), "{}", render_text(&result));
}

#[test]
fn bad_fixture_finding_lines_are_attributed() {
    let result = swim_lint::run(&fixture("bad")).expect("bad fixture loads");
    let has = |rule: RuleId, file: &str| {
        result
            .findings
            .iter()
            .any(|f| f.rule == rule && f.file.ends_with(file))
    };
    assert!(has(RuleId::Panic, "crates/store/src/lib.rs"));
    assert!(has(RuleId::Clock, "crates/store/src/lib.rs"));
    assert!(has(RuleId::Ordering, "crates/store/src/lib.rs"));
    assert!(has(RuleId::Env, "crates/store/src/lib.rs"));
    assert!(has(RuleId::Waiver, "crates/store/src/lib.rs"));
    assert!(has(RuleId::Layering, "crates/store/src/lib.rs")); // undeclared `use swim_catalog`
    assert!(has(RuleId::Durability, "crates/catalog/src/lib.rs"));
    assert!(has(RuleId::Layering, "docs/depgraph.spec")); // swim-ghost resolves to nothing
    assert!(has(RuleId::Env, "docs/env-registry.txt")); // SWIM_STALE has no reader
    assert!(has(RuleId::Env, "README.md")); // markers missing
}

#[test]
fn good_fixture_is_quiet_with_one_reasoned_waiver() {
    let result = swim_lint::run(&fixture("good")).expect("good fixture loads");
    assert!(result.is_clean(), "{}", render_text(&result));
    assert_eq!(result.waived.len(), 1, "{}", render_text(&result));
    let waived = &result.waived[0];
    assert_eq!(waived.rule, RuleId::Panic);
    assert!(waived.reason.contains("reasoned waiver"));
}
