//! Durable mutation stays inside the allowlisted helpers, atomics carry
//! justifications, and the declared dependency is actually used.

pub use swim_store::tidy;

/// The one place a rename may happen.
pub fn publish_no_clobber(tmp: &str, dst: &str) -> std::io::Result<()> {
    std::fs::rename(tmp, dst)
}

pub fn relaxed(counter: &std::sync::atomic::AtomicU64) -> u64 {
    // lint: ordering: fixture counter; atomicity alone suffices
    counter.load(std::sync::atomic::Ordering::Relaxed)
}
