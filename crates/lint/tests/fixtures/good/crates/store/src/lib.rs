//! Clean under every rule: typed control flow, one reasoned waiver, and
//! test-scoped code that the strict rules must ignore.

pub fn tidy(xs: &[u64]) -> Option<u64> {
    let _ = std::env::var("SWIM_GOOD");
    // lint: allow(panic, "fixture: demonstrates a reasoned waiver surviving the scan")
    let head = xs.first().copied().unwrap();
    Some(head)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_scope_is_exempt() {
        let started = std::time::Instant::now();
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let _ = started.elapsed();
    }
}
