//! Durable state mutated outside the publish/fsync helpers.

pub fn clobber(a: &str, b: &str) -> std::io::Result<()> {
    std::fs::rename(a, b)
}
