//! Violates every file-level rule at least once. Never compiled — this
//! file exists only to be scanned by swim-lint's fixture tests.

use std::time::Instant;
use swim_catalog::not_a_declared_dependency;

pub fn naughty(xs: &[u64]) -> u64 {
    let t = Instant::now();
    let head = xs.first().copied().unwrap();
    // lint: allow(panic)
    let tail = xs[0];
    let counter = std::sync::atomic::AtomicU64::new(head);
    counter.fetch_add(tail, std::sync::atomic::Ordering::Relaxed);
    let _ = std::env::var("SWIM_ROGUE");
    not_a_declared_dependency();
    t.elapsed().as_nanos() as u64
}
