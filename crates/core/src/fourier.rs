//! Discrete Fourier analysis for diurnal-pattern detection (§5.1).
//!
//! The paper notes that "some workloads exhibit daily diurnal patterns,
//! revealed by Fourier analysis". This module implements a plain DFT over
//! hourly signals and a detector that reports whether the 24-hour
//! component stands out from the spectrum's noise floor.

use serde::{Deserialize, Serialize};

/// Magnitude spectrum of a real-valued signal (DC component excluded).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Spectrum {
    /// Number of input samples.
    pub n: usize,
    /// `magnitudes[k-1]` is the magnitude of frequency bin `k`
    /// (`k` cycles over the whole signal), for `k = 1..=n/2`.
    pub magnitudes: Vec<f64>,
}

impl Spectrum {
    /// Compute the DFT magnitude spectrum of `signal`. O(n²) — hourly
    /// signals here are at most a few thousand points, where the naive
    /// transform is fast enough and dependency-free.
    pub fn of(signal: &[f64]) -> Spectrum {
        let n = signal.len();
        let half = n / 2;
        let mut magnitudes = Vec::with_capacity(half);
        for k in 1..=half {
            let mut re = 0.0;
            let mut im = 0.0;
            for (t, &x) in signal.iter().enumerate() {
                let angle = std::f64::consts::TAU * k as f64 * t as f64 / n as f64;
                re += x * angle.cos();
                im -= x * angle.sin();
            }
            magnitudes.push((re * re + im * im).sqrt());
        }
        Spectrum { n, magnitudes }
    }

    /// Magnitude at the frequency corresponding to `period` samples per
    /// cycle, linearly interpolating between the two nearest bins when the
    /// signal length is not a multiple of the period.
    pub fn magnitude_at_period(&self, period: f64) -> Option<f64> {
        if self.magnitudes.is_empty() || period <= 0.0 {
            return None;
        }
        let k = self.n as f64 / period;
        if k < 1.0 || k > self.magnitudes.len() as f64 {
            return None;
        }
        let lo = k.floor() as usize;
        let hi = k.ceil() as usize;
        let m_lo = self.magnitudes[lo - 1];
        if lo == hi {
            return Some(m_lo);
        }
        let m_hi = self.magnitudes[(hi - 1).min(self.magnitudes.len() - 1)];
        let t = k - lo as f64;
        Some(m_lo + t * (m_hi - m_lo))
    }

    /// Median magnitude across all bins — the spectrum noise floor.
    pub fn noise_floor(&self) -> f64 {
        if self.magnitudes.is_empty() {
            return 0.0;
        }
        let mut sorted = self.magnitudes.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        sorted[sorted.len() / 2]
    }
}

/// Result of diurnal detection on an hourly signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalDetection {
    /// Magnitude of the 24-hour component.
    pub daily_magnitude: f64,
    /// Spectrum noise floor (median bin magnitude).
    pub noise_floor: f64,
    /// `daily_magnitude / noise_floor`; the signal-to-noise of the daily
    /// cycle.
    pub snr: f64,
    /// `true` iff the daily component exceeds the detection threshold.
    pub detected: bool,
}

/// Detect a daily cycle in an hourly signal. `threshold` is the SNR above
/// which the 24-hour bin counts as detected (3.0 is a reasonable default:
/// the daily bin must be 3× the median bin).
pub fn detect_diurnal(hourly_signal: &[f64], threshold: f64) -> Option<DiurnalDetection> {
    if hourly_signal.len() < 48 {
        return None; // need at least two days to see a daily cycle
    }
    let spectrum = Spectrum::of(hourly_signal);
    let daily = spectrum.magnitude_at_period(24.0)?;
    let floor = spectrum.noise_floor();
    let snr = if floor > 0.0 {
        daily / floor
    } else {
        f64::INFINITY
    };
    Some(DiurnalDetection {
        daily_magnitude: daily,
        noise_floor: floor,
        snr,
        detected: snr >= threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn daily_sine(hours: usize, amplitude: f64, base: f64) -> Vec<f64> {
        (0..hours)
            .map(|h| base + amplitude * (h as f64 / 24.0 * std::f64::consts::TAU).sin())
            .collect()
    }

    #[test]
    fn pure_daily_sine_is_detected() {
        let signal = daily_sine(24 * 14, 10.0, 100.0);
        let d = detect_diurnal(&signal, 3.0).unwrap();
        assert!(d.detected, "snr {}", d.snr);
        assert!(d.snr > 10.0);
    }

    #[test]
    fn white_noise_is_not_detected() {
        // Deterministic pseudo-noise (LCG) — flat spectrum.
        let mut x: u64 = 12345;
        let signal: Vec<f64> = (0..24 * 14)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as f64 / (1u64 << 31) as f64
            })
            .collect();
        let d = detect_diurnal(&signal, 3.0).unwrap();
        assert!(!d.detected, "snr {}", d.snr);
    }

    #[test]
    fn spectrum_peak_at_daily_bin() {
        let hours = 24 * 10;
        let signal = daily_sine(hours, 5.0, 0.0);
        let s = Spectrum::of(&signal);
        // Bin k = hours/24 = 10 must dominate.
        let peak_bin = s
            .magnitudes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0
            + 1;
        assert_eq!(peak_bin, 10);
    }

    #[test]
    fn short_signals_are_rejected() {
        assert!(detect_diurnal(&daily_sine(24, 1.0, 0.0), 3.0).is_none());
    }

    #[test]
    fn magnitude_at_period_bounds() {
        let s = Spectrum::of(&daily_sine(96, 1.0, 0.0));
        assert!(s.magnitude_at_period(0.0).is_none());
        assert!(s.magnitude_at_period(1.0).is_none()); // beyond Nyquist
        assert!(s.magnitude_at_period(24.0).is_some());
    }

    #[test]
    fn weekly_cycle_distinguished_from_daily() {
        // A 7-day cycle should not trip the daily detector.
        let hours = 24 * 28;
        let signal: Vec<f64> = (0..hours)
            .map(|h| 100.0 + 10.0 * (h as f64 / (24.0 * 7.0) * std::f64::consts::TAU).sin())
            .collect();
        let d = detect_diurnal(&signal, 3.0).unwrap();
        assert!(
            !d.detected,
            "weekly cycle misdetected as daily, snr {}",
            d.snr
        );
    }
}
