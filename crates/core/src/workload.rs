//! [`WorkloadAnalysis`]: the orchestrator that runs the full §4–§6
//! methodology over one trace and bundles the serializable results every
//! figure/table harness consumes.

use crate::access::{FileAccessStats, PathStage};
use crate::burstiness::Burstiness;
use crate::fourier::{detect_diurnal, DiurnalDetection};
use crate::kmeans::{KMeans, KMeansConfig};
use crate::locality::LocalityStats;
use crate::names::NameAnalysis;
use crate::stats::Ecdf;
use crate::timeseries::{HourlySeries, SeriesCorrelations};
use serde::{Deserialize, Serialize};
use swim_trace::{Trace, TraceSummary};

/// Knobs for a full-workload analysis run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Maximum k explored by the elbow rule.
    pub max_k: usize,
    /// Elbow threshold: stop when inertia improves by less than this
    /// fraction.
    pub elbow_threshold: f64,
    /// K-means configuration template (k is overridden by the elbow).
    pub kmeans: KMeansConfig,
    /// SNR threshold for diurnal detection.
    pub diurnal_snr: f64,
}

impl Default for AnalysisConfig {
    /// Paper-faithful defaults: cluster **raw** feature vectors (§6.2's
    /// literal procedure — in raw space the huge jobs dominate distance,
    /// which is what isolates Table 2's tiny-population clusters), with a
    /// 0.5 elbow threshold suited to the heavy-tailed raw inertia.
    fn default() -> Self {
        AnalysisConfig {
            max_k: 12,
            elbow_threshold: 0.5,
            kmeans: KMeansConfig {
                scaling: crate::kmeans::FeatureScaling::Raw,
                ..KMeansConfig::default()
            },
            diurnal_snr: 3.0,
        }
    }
}

/// Results of the full characterization of one trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadAnalysis {
    /// Table 1 row.
    pub summary: TraceSummary,
    /// Per-job input-size CDF (Fig. 1 left).
    pub input_sizes: Ecdf,
    /// Per-job shuffle-size CDF (Fig. 1 middle).
    pub shuffle_sizes: Ecdf,
    /// Per-job output-size CDF (Fig. 1 right).
    pub output_sizes: Ecdf,
    /// Input-path access statistics (Figs. 2–3), when paths exist.
    pub input_access: FileAccessStats,
    /// Output-path access statistics (Figs. 2, 4), when paths exist.
    pub output_access: FileAccessStats,
    /// Re-access locality (Figs. 5–6).
    pub locality: LocalityStats,
    /// Hourly submission series (Fig. 7, first three columns).
    pub hourly: HourlySeries,
    /// Burstiness of the task-seconds/hour signal (Fig. 8), when defined.
    pub burstiness: Option<Burstiness>,
    /// Fig. 9 correlation triple.
    pub correlations: SeriesCorrelations,
    /// Diurnal detection on jobs/hour (§5.1), when the trace spans ≥ 2 days.
    pub diurnal: Option<DiurnalDetection>,
    /// Job-name analysis (§6.1, Fig. 10).
    pub names: NameAnalysis,
    /// K-means job types (Table 2) with elbow-chosen k.
    pub job_types: KMeans,
}

impl WorkloadAnalysis {
    /// Run the full methodology with default configuration.
    pub fn of(trace: &Trace) -> WorkloadAnalysis {
        Self::with_config(trace, AnalysisConfig::default())
    }

    /// Run the full methodology.
    pub fn with_config(trace: &Trace, config: AnalysisConfig) -> WorkloadAnalysis {
        assert!(!trace.is_empty(), "cannot analyze an empty trace");
        let input_sizes = Ecdf::new(trace.jobs().iter().map(|j| j.input.as_f64()).collect());
        let shuffle_sizes = Ecdf::new(trace.jobs().iter().map(|j| j.shuffle.as_f64()).collect());
        let output_sizes = Ecdf::new(trace.jobs().iter().map(|j| j.output.as_f64()).collect());
        let hourly = HourlySeries::of(trace);
        let burstiness = Burstiness::of(&hourly.task_seconds, &[]);
        let correlations = hourly.correlations();
        let diurnal = detect_diurnal(&hourly.jobs, config.diurnal_snr);
        let job_types =
            KMeans::fit_with_elbow(trace, config.max_k, config.elbow_threshold, config.kmeans);
        WorkloadAnalysis {
            summary: trace.summary(),
            input_sizes,
            shuffle_sizes,
            output_sizes,
            input_access: FileAccessStats::gather(trace, PathStage::Input),
            output_access: FileAccessStats::gather(trace, PathStage::Output),
            locality: LocalityStats::gather(trace),
            hourly,
            burstiness,
            correlations,
            diurnal,
            names: NameAnalysis::of(trace),
            job_types,
        }
    }

    /// Share of jobs in the dominant (largest) job-type cluster — the
    /// paper's ">90 % small jobs" headline.
    pub fn dominant_job_type_share(&self) -> f64 {
        let total: u64 = self.job_types.clusters.iter().map(|c| c.count).sum();
        let max = self
            .job_types
            .clusters
            .iter()
            .map(|c| c.count)
            .max()
            .unwrap_or(0);
        max as f64 / total.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swim_trace::trace::WorkloadKind;
    use swim_trace::{DataSize, Dur, JobBuilder, PathId, Timestamp};

    fn mixed_trace() -> Trace {
        let mut jobs = Vec::new();
        for i in 0..200u64 {
            jobs.push(
                JobBuilder::new(i)
                    .name(if i % 2 == 0 { "insert x" } else { "ad y" })
                    .submit(Timestamp::from_secs(i * 700))
                    .duration(Dur::from_secs(30))
                    .input(DataSize::from_mb(10))
                    .output(DataSize::from_kb(900))
                    .map_task_time(Dur::from_secs(20))
                    .tasks(1, 0)
                    .input_paths(vec![PathId(i % 13)])
                    .output_paths(vec![PathId(1000 + i)])
                    .build()
                    .unwrap(),
            );
        }
        for i in 200..220u64 {
            jobs.push(
                JobBuilder::new(i)
                    .name("from big")
                    .submit(Timestamp::from_secs(i * 700))
                    .duration(Dur::from_hours(1))
                    .input(DataSize::from_gb(400))
                    .shuffle(DataSize::from_tb(1))
                    .output(DataSize::from_gb(40))
                    .map_task_time(Dur::from_secs(500_000))
                    .reduce_task_time(Dur::from_secs(400_000))
                    .tasks(100, 10)
                    .input_paths(vec![PathId(7)])
                    .output_paths(vec![PathId(2000 + i)])
                    .build()
                    .unwrap(),
            );
        }
        Trace::new(WorkloadKind::Custom("mixed".into()), 10, jobs).unwrap()
    }

    #[test]
    fn full_analysis_runs_end_to_end() {
        let a = WorkloadAnalysis::of(&mixed_trace());
        assert_eq!(a.summary.jobs, 220);
        assert!(!a.input_sizes.is_empty());
        assert!(a.input_access.distinct_files() > 0);
        assert!(a.names.has_names());
        assert!(a.job_types.clusters.len() >= 2);
        assert!(a.dominant_job_type_share() > 0.8);
    }

    #[test]
    fn burstiness_present_for_active_trace() {
        let a = WorkloadAnalysis::of(&mixed_trace());
        // Every hour has at least one submission (jobs every 700 s), so the
        // median task-seconds is positive and burstiness is defined.
        assert!(a.burstiness.is_some());
    }

    #[test]
    fn correlations_bytes_tasktime_strongest() {
        // Big jobs carry both bytes and task-time; jobs/hour is constant-ish.
        let a = WorkloadAnalysis::of(&mixed_trace());
        let c = a.correlations;
        assert!(
            c.bytes_task_seconds > c.jobs_bytes.abs(),
            "bytes↔task {} vs jobs↔bytes {}",
            c.bytes_task_seconds,
            c.jobs_bytes
        );
    }

    #[test]
    #[should_panic(expected = "cannot analyze an empty trace")]
    fn empty_trace_rejected() {
        let t = Trace::new(WorkloadKind::Custom("e".into()), 1, vec![]).unwrap();
        WorkloadAnalysis::of(&t);
    }

    #[test]
    fn analysis_serializes_to_json() {
        let a = WorkloadAnalysis::of(&mixed_trace());
        let s = serde_json::to_string(&a).unwrap();
        assert!(s.contains("\"summary\""));
    }
}
