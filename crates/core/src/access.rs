//! Data access pattern analysis (§4.2): file access frequency skew, the
//! Zipf rank–frequency fit of Fig. 2, the jobs-vs-file-size and
//! stored-bytes-vs-file-size CDFs of Figs. 3–4, and the 80-X rule.

use crate::stats::{ols, Ecdf, Regression};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use swim_trace::{DataSize, PathId, Trace};

/// Which stage's paths to analyze.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathStage {
    /// Job input files.
    Input,
    /// Job output files.
    Output,
}

/// Per-file access statistics for one stage of one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileAccessStats {
    /// Which stage was analyzed.
    pub stage: PathStage,
    /// Access counts sorted descending (rank 1 first) — the Fig. 2 series.
    pub frequencies: Vec<u64>,
    /// Per-file (size, access-count) pairs, used for the Figs. 3–4 CDFs.
    pub file_sizes: Vec<(DataSize, u64)>,
}

impl FileAccessStats {
    /// Gather access statistics from a trace. Jobs without paths for the
    /// requested stage are skipped (matching the paper's availability
    /// matrix). File size is taken as the job data size at first touch.
    pub fn gather(trace: &Trace, stage: PathStage) -> FileAccessStats {
        let mut counts: HashMap<PathId, u64> = HashMap::new();
        let mut sizes: HashMap<PathId, DataSize> = HashMap::new();
        for job in trace.jobs() {
            let (paths, size) = match stage {
                PathStage::Input => (&job.input_paths, job.input),
                PathStage::Output => (&job.output_paths, job.output),
            };
            for &p in paths {
                *counts.entry(p).or_insert(0) += 1;
                sizes.entry(p).or_insert(size);
            }
        }
        let mut frequencies: Vec<u64> = counts.values().copied().collect();
        frequencies.sort_unstable_by(|a, b| b.cmp(a));
        let file_sizes: Vec<(DataSize, u64)> = sizes.iter().map(|(p, &s)| (s, counts[p])).collect();
        FileAccessStats {
            stage,
            frequencies,
            file_sizes,
        }
    }

    /// Number of distinct files.
    pub fn distinct_files(&self) -> usize {
        self.frequencies.len()
    }

    /// Total accesses.
    pub fn total_accesses(&self) -> u64 {
        self.frequencies.iter().sum()
    }

    /// Fit the log-log rank–frequency line (Fig. 2). The paper reports the
    /// *magnitude* of the slope ≈ 5/6 on every workload; this returns the
    /// regression of `ln(freq)` on `ln(rank)`, whose slope is negative.
    ///
    /// `max_rank` truncates the fit to the head of the distribution, where
    /// frequencies are statistically meaningful (the tail of rank-1-count
    /// files flattens any finite sample; the paper's log-log lines are
    /// likewise dominated by the head).
    pub fn zipf_fit(&self, max_rank: Option<usize>) -> Option<Regression> {
        let cap = max_rank.unwrap_or(usize::MAX).min(self.frequencies.len());
        let pts: Vec<(f64, f64)> = self
            .frequencies
            .iter()
            .take(cap)
            .enumerate()
            .filter(|(_, &f)| f > 0)
            .map(|(i, &f)| (((i + 1) as f64).ln(), (f as f64).ln()))
            .collect();
        ols(&pts)
    }

    /// CDF of jobs (accesses) against file size — Figs. 3–4, top panels.
    /// Each access contributes one sample at its file's size.
    pub fn jobs_by_file_size(&self) -> Ecdf {
        let mut samples = Vec::with_capacity(self.total_accesses() as usize);
        for &(size, count) in &self.file_sizes {
            for _ in 0..count {
                samples.push(size.as_f64());
            }
        }
        Ecdf::new(samples)
    }

    /// CDF of stored bytes against file size — Figs. 3–4, bottom panels.
    /// Returns `(file_size, cumulative_fraction_of_bytes)` points.
    pub fn bytes_stored_by_file_size(&self) -> Vec<(f64, f64)> {
        let mut sizes: Vec<DataSize> = self.file_sizes.iter().map(|&(s, _)| s).collect();
        sizes.sort_unstable();
        let total: f64 = sizes.iter().map(|s| s.as_f64()).sum();
        if total == 0.0 {
            return Vec::new();
        }
        let mut acc = 0.0;
        sizes
            .into_iter()
            .map(|s| {
                acc += s.as_f64();
                (s.as_f64(), acc / total)
            })
            .collect()
    }

    /// The 80-X rule (§4.2): the percentage X of stored bytes reached by
    /// the bytes-CDF (Fig. 3/4 bottom) at the file size where the
    /// jobs-CDF (top) reaches `access_fraction`. The paper measures X
    /// between 1 and 8 across workloads ("80-1 to 80-8 rule").
    ///
    /// Operationally: find the smallest file size `S` such that at least
    /// `access_fraction` of accesses touch files of size ≤ `S`, then
    /// report what share of stored bytes lives in files of size ≤ `S`.
    pub fn eighty_x_rule(&self, access_fraction: f64) -> Option<f64> {
        if self.file_sizes.is_empty() {
            return None;
        }
        let total_accesses: u64 = self.file_sizes.iter().map(|&(_, c)| c).sum();
        let total_bytes: f64 = self.file_sizes.iter().map(|&(s, _)| s.as_f64()).sum();
        if total_accesses == 0 || total_bytes == 0.0 {
            return None;
        }
        let mut by_size: Vec<&(DataSize, u64)> = self.file_sizes.iter().collect();
        by_size.sort_by_key(|&&(s, _)| s);
        let target = access_fraction * total_accesses as f64;
        let mut accesses = 0.0;
        let mut bytes = 0.0;
        for &(size, count) in by_size {
            accesses += count as f64;
            bytes += size.as_f64();
            if accesses >= target {
                break;
            }
        }
        Some(100.0 * bytes / total_bytes)
    }

    /// Fraction of stored bytes held by files smaller than `threshold` —
    /// the §4.2 "90 % of jobs access files … accounting for up to only
    /// 16 % of bytes stored" viability argument for threshold caching.
    pub fn bytes_fraction_below(&self, threshold: DataSize) -> f64 {
        let total: f64 = self.file_sizes.iter().map(|&(s, _)| s.as_f64()).sum();
        if total == 0.0 {
            return 0.0;
        }
        let below: f64 = self
            .file_sizes
            .iter()
            .filter(|&&(s, _)| s < threshold)
            .map(|&(s, _)| s.as_f64())
            .sum();
        below / total
    }

    /// Fraction of accesses that touch files smaller than `threshold`.
    pub fn access_fraction_below(&self, threshold: DataSize) -> f64 {
        let total: u64 = self.file_sizes.iter().map(|&(_, c)| c).sum();
        if total == 0 {
            return 0.0;
        }
        let below: u64 = self
            .file_sizes
            .iter()
            .filter(|&&(s, _)| s < threshold)
            .map(|&(_, c)| c)
            .sum();
        below as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swim_trace::trace::WorkloadKind;
    use swim_trace::{Dur, JobBuilder, Timestamp};

    /// Trace where file p0 is read by 8 jobs, p1 by 2, p2 by 1; p0 is tiny,
    /// p2 is huge.
    fn skewed_trace() -> Trace {
        let mut jobs = Vec::new();
        let mut id = 0u64;
        let mut push = |path: u64, size: DataSize, jobs: &mut Vec<_>, times: usize| {
            for _ in 0..times {
                jobs.push(
                    JobBuilder::new(id)
                        .submit(Timestamp::from_secs(id * 10))
                        .duration(Dur::from_secs(5))
                        .input(size)
                        .map_task_time(Dur::from_secs(1))
                        .tasks(1, 0)
                        .input_paths(vec![PathId(path)])
                        .build()
                        .unwrap(),
                );
                id += 1;
            }
        };
        push(0, DataSize::from_mb(1), &mut jobs, 8);
        push(1, DataSize::from_gb(1), &mut jobs, 2);
        push(2, DataSize::from_tb(1), &mut jobs, 1);
        Trace::new(WorkloadKind::Custom("skew".into()), 1, jobs).unwrap()
    }

    #[test]
    fn gather_counts_and_ranks() {
        let s = FileAccessStats::gather(&skewed_trace(), PathStage::Input);
        assert_eq!(s.distinct_files(), 3);
        assert_eq!(s.total_accesses(), 11);
        assert_eq!(s.frequencies, vec![8, 2, 1]);
    }

    #[test]
    fn output_stage_empty_when_no_output_paths() {
        let s = FileAccessStats::gather(&skewed_trace(), PathStage::Output);
        assert_eq!(s.distinct_files(), 0);
        assert!(s.zipf_fit(None).is_none());
    }

    #[test]
    fn zipf_fit_recovers_synthetic_exponent() {
        // Construct frequencies exactly ∝ rank^{-5/6}.
        let s_true = 5.0 / 6.0;
        let freqs: Vec<u64> = (1..=2000u64)
            .map(|r| ((1e6 / (r as f64).powf(s_true)).round()) as u64)
            .collect();
        let stats = FileAccessStats {
            stage: PathStage::Input,
            frequencies: freqs,
            file_sizes: vec![],
        };
        let fit = stats.zipf_fit(None).unwrap();
        assert!(
            (fit.slope + s_true).abs() < 0.01,
            "slope {} expected {}",
            fit.slope,
            -s_true
        );
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn jobs_by_file_size_weights_by_accesses() {
        let s = FileAccessStats::gather(&skewed_trace(), PathStage::Input);
        let cdf = s.jobs_by_file_size();
        // 8 of 11 accesses touch the 1 MB file.
        assert!((cdf.cdf(DataSize::from_mb(1).as_f64()) - 8.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn bytes_stored_cdf_reaches_one() {
        let s = FileAccessStats::gather(&skewed_trace(), PathStage::Input);
        let pts = s.bytes_stored_by_file_size();
        assert_eq!(pts.len(), 3);
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
        // The tiny hot file holds a negligible share of stored bytes.
        assert!(pts[0].1 < 0.01);
    }

    #[test]
    fn eighty_x_rule_small_for_skewed_access() {
        let s = FileAccessStats::gather(&skewed_trace(), PathStage::Input);
        // By ascending size: the 1 MB file covers 8/11 accesses (73 %),
        // adding the 1 GB file reaches 10/11 (91 %) ≥ 80 % — the bytes
        // below that size are ≈0.1 % of the ~1 TB total.
        let x = s.eighty_x_rule(0.8).unwrap();
        assert!(x < 1.0, "X = {x}%");
    }

    #[test]
    fn threshold_fractions() {
        let s = FileAccessStats::gather(&skewed_trace(), PathStage::Input);
        let thr = DataSize::from_gb(2);
        // p0 and p1 are below 2 GB: 10 of 11 accesses, ~0.1 % of bytes.
        assert!((s.access_fraction_below(thr) - 10.0 / 11.0).abs() < 1e-9);
        assert!(s.bytes_fraction_below(thr) < 0.01);
    }

    #[test]
    fn eighty_x_none_for_empty() {
        let s = FileAccessStats {
            stage: PathStage::Input,
            frequencies: vec![],
            file_sizes: vec![],
        };
        assert!(s.eighty_x_rule(0.8).is_none());
    }
}
