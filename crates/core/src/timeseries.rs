//! Hourly multi-dimensional workload time series (§5, Fig. 7).
//!
//! Each submitted job contributes to three submission-side dimensions in
//! its submit hour — job count, aggregate I/O bytes, and aggregate
//! task-time — exactly the first three columns of Fig. 7. (The fourth
//! column, cluster utilization, is an *execution-side* signal produced by
//! `swim-sim` replaying the trace.)

use crate::stats::pearson;
use serde::{Deserialize, Serialize};
use swim_trace::Trace;

/// Hour-granularity submission time series for one trace.
///
/// ```
/// use swim_core::timeseries::HourlySeries;
/// use swim_trace::trace::WorkloadKind;
/// use swim_trace::{DataSize, Dur, JobBuilder, Timestamp, Trace};
///
/// // Two jobs in hour 0, one in hour 2.
/// let jobs = [0u64, 1800, 7700]
///     .iter()
///     .enumerate()
///     .map(|(id, &secs)| {
///         JobBuilder::new(id as u64)
///             .submit(Timestamp::from_secs(secs))
///             .input(DataSize::from_mb(10))
///             .map_task_time(Dur::from_secs(60))
///             .tasks(1, 0)
///             .build()
///             .unwrap()
///     })
///     .collect();
/// let trace = Trace::new(WorkloadKind::Custom("demo".into()), 4, jobs).unwrap();
///
/// let series = HourlySeries::of(&trace);
/// assert_eq!(series.jobs, vec![2.0, 0.0, 1.0]);
/// assert_eq!(series.task_seconds, vec![120.0, 0.0, 60.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HourlySeries {
    /// Jobs submitted per hour.
    pub jobs: Vec<f64>,
    /// Aggregate (input + shuffle + output) bytes of jobs submitted per hour.
    pub bytes: Vec<f64>,
    /// Aggregate (map + reduce) task-seconds of jobs submitted per hour.
    pub task_seconds: Vec<f64>,
}

impl HourlySeries {
    /// Bin a trace into hourly sums. The series spans from the trace's
    /// first submit hour to its last (inclusive); empty traces yield empty
    /// series. The hour span is known up front here, so this bins
    /// directly without the sparse buffer [`HourlySeries::from_jobs`]
    /// needs for unordered streams.
    pub fn of(trace: &Trace) -> HourlySeries {
        let (Some(start), Some(end)) = (trace.start(), trace.end()) else {
            return HourlySeries {
                jobs: vec![],
                bytes: vec![],
                task_seconds: vec![],
            };
        };
        let first = start.hour_bucket();
        let n = (end.hour_bucket() - first + 1) as usize;
        let mut jobs = vec![0.0; n];
        let mut bytes = vec![0.0; n];
        let mut task_seconds = vec![0.0; n];
        for job in trace.jobs() {
            let h = (job.submit.hour_bucket() - first) as usize;
            jobs[h] += 1.0;
            bytes[h] += job.total_io().as_f64();
            task_seconds[h] += job.total_task_time().as_f64();
        }
        HourlySeries {
            jobs,
            bytes,
            task_seconds,
        }
    }

    /// Bin an arbitrary job stream into hourly sums without materializing
    /// a [`Trace`] — the entry point for `swim-store`'s chunked scans,
    /// where jobs arrive chunk by chunk from disk (owned or borrowed).
    /// Jobs may arrive in any order; the series spans the observed
    /// min..=max submit hours and memory stays at one 24-byte tuple per
    /// job regardless of name/path payloads.
    pub fn from_jobs<J: std::borrow::Borrow<swim_trace::Job>>(
        jobs: impl Iterator<Item = J>,
    ) -> HourlySeries {
        // Accumulate sparsely first: the hour span is unknown until every
        // job has been seen.
        let mut first = u64::MAX;
        let mut last = 0u64;
        let mut sparse: Vec<(u64, f64, f64)> = Vec::new();
        let mut count = 0usize;
        for job in jobs {
            let job = job.borrow();
            let h = job.submit.hour_bucket();
            first = first.min(h);
            last = last.max(h);
            sparse.push((h, job.total_io().as_f64(), job.total_task_time().as_f64()));
            count += 1;
        }
        if count == 0 {
            return HourlySeries {
                jobs: vec![],
                bytes: vec![],
                task_seconds: vec![],
            };
        }
        let n = (last - first + 1) as usize;
        let mut jobs = vec![0.0; n];
        let mut bytes = vec![0.0; n];
        let mut task_seconds = vec![0.0; n];
        for (h, io, task) in sparse {
            let idx = (h - first) as usize;
            jobs[idx] += 1.0;
            bytes[idx] += io;
            task_seconds[idx] += task;
        }
        HourlySeries {
            jobs,
            bytes,
            task_seconds,
        }
    }

    /// Number of hour buckets.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` iff the series is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Pairwise Pearson correlations between the three dimensions — the
    /// Fig. 9 bars: `(jobs↔bytes, jobs↔task_seconds, bytes↔task_seconds)`.
    pub fn correlations(&self) -> SeriesCorrelations {
        SeriesCorrelations {
            jobs_bytes: pearson(&self.jobs, &self.bytes),
            jobs_task_seconds: pearson(&self.jobs, &self.task_seconds),
            bytes_task_seconds: pearson(&self.bytes, &self.task_seconds),
        }
    }

    /// Truncate to the first `hours` buckets (Fig. 7 plots one week).
    pub fn truncate(&self, hours: usize) -> HourlySeries {
        HourlySeries {
            jobs: self.jobs.iter().take(hours).copied().collect(),
            bytes: self.bytes.iter().take(hours).copied().collect(),
            task_seconds: self.task_seconds.iter().take(hours).copied().collect(),
        }
    }
}

/// The Fig. 9 correlation triple for one workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesCorrelations {
    /// Correlation between jobs/hour and bytes/hour.
    pub jobs_bytes: f64,
    /// Correlation between jobs/hour and task-seconds/hour.
    pub jobs_task_seconds: f64,
    /// Correlation between bytes/hour and task-seconds/hour.
    pub bytes_task_seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use swim_trace::trace::WorkloadKind;
    use swim_trace::{DataSize, Dur, JobBuilder, Timestamp};

    fn job(id: u64, submit_secs: u64, io_mb: u64, task_secs: u64) -> swim_trace::Job {
        JobBuilder::new(id)
            .submit(Timestamp::from_secs(submit_secs))
            .duration(Dur::from_secs(10))
            .input(DataSize::from_mb(io_mb))
            .map_task_time(Dur::from_secs(task_secs))
            .tasks(1, 0)
            .build()
            .unwrap()
    }

    fn trace(jobs: Vec<swim_trace::Job>) -> Trace {
        Trace::new(WorkloadKind::Custom("ts".into()), 1, jobs).unwrap()
    }

    #[test]
    fn bins_align_to_first_hour() {
        // Submits at hour 3 and hour 5 → 3 buckets starting at hour 3.
        let t = trace(vec![job(0, 3 * 3600, 1, 1), job(1, 5 * 3600 + 10, 1, 1)]);
        let s = HourlySeries::of(&t);
        assert_eq!(s.len(), 3);
        assert_eq!(s.jobs, vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn sums_io_and_task_time() {
        let t = trace(vec![job(0, 0, 100, 50), job(1, 30, 200, 70)]);
        let s = HourlySeries::of(&t);
        assert_eq!(s.len(), 1);
        assert!((s.bytes[0] - 300e6).abs() < 1.0);
        assert_eq!(s.task_seconds[0], 120.0);
    }

    #[test]
    fn empty_trace_yields_empty_series() {
        let s = HourlySeries::of(&trace(vec![]));
        assert!(s.is_empty());
    }

    #[test]
    fn correlations_reflect_construction() {
        // bytes ∝ task_seconds exactly; jobs constant → 0 correlation.
        let s = HourlySeries {
            jobs: vec![1.0, 1.0, 1.0, 1.0],
            bytes: vec![1.0, 2.0, 3.0, 4.0],
            task_seconds: vec![10.0, 20.0, 30.0, 40.0],
        };
        let c = s.correlations();
        assert_eq!(c.jobs_bytes, 0.0);
        assert!((c.bytes_task_seconds - 1.0).abs() < 1e-12);
    }

    #[test]
    fn truncate_caps_length() {
        let t = trace(vec![job(0, 0, 1, 1), job(1, 10 * 3600, 1, 1)]);
        let s = HourlySeries::of(&t).truncate(4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.jobs[0], 1.0);
    }
}
