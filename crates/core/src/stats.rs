//! Statistical primitives: empirical CDFs/quantiles, descriptive stats,
//! Pearson correlation, ordinary least squares, and log-scale histograms.

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution over a finite sample.
///
/// Every figure-1-style CDF in the paper is one of these; the harness
/// evaluates it at log-spaced points to print the published curves.
///
/// ```
/// use swim_core::stats::Ecdf;
///
/// let sizes = Ecdf::new(vec![1.0, 2.0, 2.0, 8.0, 100.0]);
/// assert_eq!(sizes.median(), 2.0);
/// assert_eq!(sizes.quantile(1.0), 100.0);
/// assert_eq!(sizes.cdf(2.0), 0.6); // 3 of 5 samples are ≤ 2
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from samples; NaNs are rejected.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "samples must not contain NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` iff no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x` (the CDF value at `x`).
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Quantile at probability `p ∈ [0, 1]` using nearest-rank. Panics on
    /// an empty sample.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty sample");
        let p = p.clamp(0.0, 1.0);
        if p == 0.0 {
            return self.sorted[0];
        }
        let rank = (p * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        *self.sorted.first().expect("non-empty")
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Evaluate the CDF at `n` log-spaced points spanning
    /// `[max(min, floor), max]` — the paper's log-axis CDF plots. `floor`
    /// guards against zero samples on a log axis (byte sizes of 0).
    pub fn log_spaced_points(&self, n: usize, floor: f64) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least two points");
        assert!(floor > 0.0, "floor must be positive");
        if self.sorted.is_empty() {
            return Vec::new();
        }
        let lo = self.min().max(floor);
        let hi = self.max().max(lo * (1.0 + 1e-12));
        let (l0, l1) = (lo.log10(), hi.log10());
        (0..n)
            .map(|i| {
                let x = 10f64.powf(l0 + (l1 - l0) * i as f64 / (n - 1) as f64);
                (x, self.cdf(x))
            })
            .collect()
    }
}

/// Descriptive statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Describe {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Describe {
    /// Compute over a non-empty sample.
    pub fn of(samples: &[f64]) -> Describe {
        assert!(!samples.is_empty(), "describe of empty sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let ecdf = Ecdf::new(samples.to_vec());
        Describe {
            n,
            mean,
            std: var.sqrt(),
            min: ecdf.min(),
            median: ecdf.median(),
            max: ecdf.max(),
        }
    }
}

/// Pearson correlation coefficient of two equal-length series.
///
/// Returns 0 when either series is constant (the paper's correlation bars,
/// Fig. 9, treat degenerate hours-long flat series as uncorrelated rather
/// than undefined).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series must have equal length");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Result of a simple linear regression `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Regression {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

/// Ordinary least squares over `(x, y)` points. Needs ≥ 2 points with
/// non-constant `x`.
pub fn ols(points: &[(f64, f64)]) -> Option<Regression> {
    let n = points.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / nf;
    let my = points.iter().map(|p| p.1).sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for &(x, y) in points {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(Regression {
        slope,
        intercept,
        r_squared,
    })
}

/// A histogram over log10-spaced bins, used for Fig. 1-style summaries
/// and for the data-generation plans in `swim-synth`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Inclusive lower edge of bin 0 (log10).
    pub min_log10: f64,
    /// Bin width in log10 units.
    pub width_log10: f64,
    /// Per-bin counts.
    pub counts: Vec<u64>,
    /// Count of samples at or below zero (unplottable on a log axis).
    pub zeros: u64,
}

impl LogHistogram {
    /// Build a histogram with `bins` bins spanning `[10^min_log10, 10^max_log10)`.
    pub fn new(min_log10: f64, max_log10: f64, bins: usize) -> Self {
        assert!(bins >= 1, "need at least one bin");
        assert!(max_log10 > min_log10, "empty range");
        LogHistogram {
            min_log10,
            width_log10: (max_log10 - min_log10) / bins as f64,
            counts: vec![0; bins],
            zeros: 0,
        }
    }

    /// Add one sample. Values ≤ 0 count as `zeros`; out-of-range values
    /// clamp into the first/last bin.
    pub fn add(&mut self, value: f64) {
        if value <= 0.0 || value.is_nan() {
            self.zeros += 1;
            return;
        }
        let pos = (value.log10() - self.min_log10) / self.width_log10;
        let idx = pos.floor().clamp(0.0, (self.counts.len() - 1) as f64) as usize;
        self.counts[idx] += 1;
    }

    /// Total samples (including zeros).
    pub fn total(&self) -> u64 {
        self.zeros + self.counts.iter().sum::<u64>()
    }

    /// Geometric midpoint value of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        10f64.powf(self.min_log10 + (i as f64 + 0.5) * self.width_log10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_cdf_and_quantiles() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(2.0), 0.5);
        assert_eq!(e.cdf(4.0), 1.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(0.5), 2.0);
        assert_eq!(e.quantile(1.0), 4.0);
        assert_eq!(e.median(), 2.0);
    }

    #[test]
    fn ecdf_is_monotone() {
        let e = Ecdf::new(vec![5.0, 1.0, 9.0, 2.0, 2.0, 7.0]);
        let xs: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let mut last = 0.0;
        for x in xs {
            let c = e.cdf(x);
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    #[should_panic(expected = "quantile of empty sample")]
    fn ecdf_empty_quantile_panics() {
        Ecdf::new(vec![]).quantile(0.5);
    }

    #[test]
    fn log_spaced_points_cover_range() {
        let e = Ecdf::new(vec![1.0, 10.0, 100.0, 1000.0]);
        let pts = e.log_spaced_points(4, 1e-3);
        assert_eq!(pts.len(), 4);
        assert!((pts[0].0 - 1.0).abs() < 1e-9);
        assert!((pts[3].0 - 1000.0).abs() < 1e-6);
        assert!((pts[3].1 - 1.0).abs() < 1e-12);
        assert!(pts.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn describe_basics() {
        let d = Describe::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.n, 4);
        assert!((d.mean - 2.5).abs() < 1e-12);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 4.0);
        assert_eq!(d.median, 2.0);
        assert!((d.std - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_series_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn ols_fits_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 - 2.0)).collect();
        let r = ols(&pts).unwrap();
        assert!((r.slope - 3.0).abs() < 1e-12);
        assert!((r.intercept + 2.0).abs() < 1e-12);
        assert!((r.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ols_rejects_degenerate_inputs() {
        assert!(ols(&[(1.0, 2.0)]).is_none());
        assert!(ols(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn log_histogram_bins_and_zeros() {
        let mut h = LogHistogram::new(0.0, 3.0, 3); // [1,10), [10,100), [100,1000)
        for v in [0.0, 5.0, 50.0, 500.0, 5000.0, -1.0] {
            h.add(v);
        }
        assert_eq!(h.zeros, 2);
        assert_eq!(h.counts, vec![1, 1, 2]); // 5000 clamps into last bin
        assert_eq!(h.total(), 6);
        assert!((h.bin_center(0) - 10f64.powf(0.5)).abs() < 1e-9);
    }
}
