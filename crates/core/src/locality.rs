//! Temporal locality of data accesses (§4.3): re-access interval
//! distributions (Fig. 5) and the fraction of jobs touching pre-existing
//! data (Fig. 6).

use crate::stats::Ecdf;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use swim_trace::{PathId, Trace};

/// Re-access analysis of one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalityStats {
    /// Seconds between successive reads of the same input file
    /// (Fig. 5 top: input→input re-access intervals).
    pub input_input_intervals: Vec<f64>,
    /// Seconds between a file being written as output and later read as
    /// input (Fig. 5 bottom: output→input re-access intervals).
    pub output_input_intervals: Vec<f64>,
    /// Fraction of jobs whose input re-reads a pre-existing input path
    /// (Fig. 6 light bars).
    pub frac_jobs_reread_input: f64,
    /// Fraction of jobs whose input consumes a pre-existing output path
    /// (Fig. 6 dark bars).
    pub frac_jobs_consume_output: f64,
}

impl LocalityStats {
    /// Compute locality statistics over a trace. Jobs without input paths
    /// are excluded from the denominators (path-less traces yield zeroes).
    pub fn gather(trace: &Trace) -> LocalityStats {
        let mut last_input_read: HashMap<PathId, u64> = HashMap::new();
        let mut output_written: HashMap<PathId, u64> = HashMap::new();
        let mut seen_inputs: HashSet<PathId> = HashSet::new();
        let mut input_input_intervals = Vec::new();
        let mut output_input_intervals = Vec::new();
        let mut jobs_with_paths = 0usize;
        let mut jobs_reread = 0usize;
        let mut jobs_consumed = 0usize;

        for job in trace.jobs() {
            let t = job.submit.secs();
            if !job.input_paths.is_empty() {
                jobs_with_paths += 1;
                let mut reread = false;
                let mut consumed = false;
                for &p in &job.input_paths {
                    if let Some(&prev) = last_input_read.get(&p) {
                        input_input_intervals.push((t.saturating_sub(prev)) as f64);
                    }
                    if seen_inputs.contains(&p) {
                        reread = true;
                    }
                    if let Some(&wrote) = output_written.get(&p) {
                        if wrote <= t {
                            consumed = true;
                            output_input_intervals.push((t.saturating_sub(wrote)) as f64);
                        }
                    }
                    last_input_read.insert(p, t);
                    seen_inputs.insert(p);
                }
                // Fig. 6 is a stacked bar of *disjoint* categories: a job
                // counts once, with output-consumption taking precedence
                // (reading a file that some job wrote is the stronger
                // dependency signal).
                if consumed {
                    jobs_consumed += 1;
                } else if reread {
                    jobs_reread += 1;
                }
            }
            let finish = job.finish().secs();
            for &p in &job.output_paths {
                output_written.entry(p).or_insert(finish);
            }
        }

        let denom = jobs_with_paths.max(1) as f64;
        LocalityStats {
            input_input_intervals,
            output_input_intervals,
            frac_jobs_reread_input: jobs_reread as f64 / denom,
            frac_jobs_consume_output: jobs_consumed as f64 / denom,
        }
    }

    /// CDF of input→input re-access intervals (seconds).
    pub fn input_input_cdf(&self) -> Ecdf {
        Ecdf::new(self.input_input_intervals.clone())
    }

    /// CDF of output→input re-access intervals (seconds).
    pub fn output_input_cdf(&self) -> Ecdf {
        Ecdf::new(self.output_input_intervals.clone())
    }

    /// Fraction of all re-accesses (both kinds) within `secs` seconds —
    /// the §4.3 "75 % of re-accesses take place within 6 hours" check.
    pub fn fraction_within(&self, secs: f64) -> f64 {
        let total = self.input_input_intervals.len() + self.output_input_intervals.len();
        if total == 0 {
            return 0.0;
        }
        let within = self
            .input_input_intervals
            .iter()
            .chain(&self.output_input_intervals)
            .filter(|&&x| x <= secs)
            .count();
        within as f64 / total as f64
    }

    /// Fraction of jobs involving any data re-access (Fig. 6 bar total;
    /// "up to 78 % of jobs involve data re-accesses"). The two categories
    /// are disjoint, so the stacked total is their exact sum.
    pub fn frac_jobs_reaccessing(&self) -> f64 {
        (self.frac_jobs_reread_input + self.frac_jobs_consume_output).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swim_trace::trace::WorkloadKind;
    use swim_trace::{DataSize, Dur, JobBuilder, Timestamp};

    fn job(id: u64, submit: u64, dur: u64, inputs: Vec<u64>, outputs: Vec<u64>) -> swim_trace::Job {
        JobBuilder::new(id)
            .submit(Timestamp::from_secs(submit))
            .duration(Dur::from_secs(dur))
            .input(DataSize::from_mb(1))
            .map_task_time(Dur::from_secs(1))
            .tasks(1, 0)
            .input_paths(inputs.into_iter().map(PathId).collect())
            .output_paths(outputs.into_iter().map(PathId).collect())
            .build()
            .unwrap()
    }

    fn trace(jobs: Vec<swim_trace::Job>) -> Trace {
        Trace::new(WorkloadKind::Custom("loc".into()), 1, jobs).unwrap()
    }

    #[test]
    fn input_reread_intervals_are_recorded() {
        // Job 0 reads p1 at t=0; job 1 re-reads p1 at t=100.
        let t = trace(vec![
            job(0, 0, 10, vec![1], vec![]),
            job(1, 100, 10, vec![1], vec![]),
        ]);
        let s = LocalityStats::gather(&t);
        assert_eq!(s.input_input_intervals, vec![100.0]);
        assert_eq!(s.frac_jobs_reread_input, 0.5);
        assert_eq!(s.frac_jobs_consume_output, 0.0);
    }

    #[test]
    fn output_consumption_measures_write_to_read_gap() {
        // Job 0 writes p7, finishing at t=10; job 1 reads p7 at t=250.
        let t = trace(vec![
            job(0, 0, 10, vec![1], vec![7]),
            job(1, 250, 10, vec![7], vec![]),
        ]);
        let s = LocalityStats::gather(&t);
        assert_eq!(s.output_input_intervals, vec![240.0]);
        assert_eq!(s.frac_jobs_consume_output, 0.5);
    }

    #[test]
    fn repeated_rereads_chain_intervals() {
        let t = trace(vec![
            job(0, 0, 1, vec![1], vec![]),
            job(1, 50, 1, vec![1], vec![]),
            job(2, 80, 1, vec![1], vec![]),
        ]);
        let s = LocalityStats::gather(&t);
        assert_eq!(s.input_input_intervals, vec![50.0, 30.0]);
    }

    #[test]
    fn fraction_within_counts_both_kinds() {
        let s = LocalityStats {
            input_input_intervals: vec![100.0, 10_000.0],
            output_input_intervals: vec![200.0, 50_000.0],
            frac_jobs_reread_input: 0.0,
            frac_jobs_consume_output: 0.0,
        };
        assert!((s.fraction_within(1_000.0) - 0.5).abs() < 1e-12);
        assert_eq!(s.fraction_within(100_000.0), 1.0);
    }

    #[test]
    fn pathless_trace_yields_zeroes() {
        let t = trace(vec![job(0, 0, 1, vec![], vec![])]);
        let s = LocalityStats::gather(&t);
        assert_eq!(s.frac_jobs_reread_input, 0.0);
        assert_eq!(s.frac_jobs_consume_output, 0.0);
        assert!(s.input_input_intervals.is_empty());
        assert_eq!(s.fraction_within(1e9), 0.0);
    }

    #[test]
    fn reaccess_total_is_capped_at_one() {
        let s = LocalityStats {
            input_input_intervals: vec![],
            output_input_intervals: vec![],
            frac_jobs_reread_input: 0.7,
            frac_jobs_consume_output: 0.6,
        };
        assert_eq!(s.frac_jobs_reaccessing(), 1.0);
    }

    #[test]
    fn future_written_outputs_do_not_count_as_consumed() {
        // Job 0 reads p7 at t=0, but p7 is only written by job 1 at t=100:
        // no output→input chain exists for job 0.
        let t = trace(vec![
            job(0, 0, 1, vec![7], vec![]),
            job(1, 100, 10, vec![], vec![7]),
        ]);
        let s = LocalityStats::gather(&t);
        assert!(s.output_input_intervals.is_empty());
    }
}
