//! The paper's burstiness metric (§5.2, Fig. 8): the vector of
//! nth-percentile-to-median ratios of an hourly load signal.
//!
//! Interpreting the resulting curve as "a cumulative distribution of
//! arrival rates per time unit, normalized by the median arrival rate":
//! a more *horizontal* curve is a more bursty workload; a vertical line is
//! a constant-rate workload. The headline scalar is the
//! peak-to-median ratio (100th percentile over median).

use crate::stats::Ecdf;
use serde::{Deserialize, Serialize};

/// One point of the burstiness curve: percentile `n` and the ratio of the
/// nth percentile to the median.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstinessPoint {
    /// Percentile in `[0, 100]`.
    pub percentile: f64,
    /// nth-percentile value divided by the median.
    pub ratio: f64,
}

/// The burstiness profile of one hourly load signal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Burstiness {
    /// Curve points, ordered by percentile.
    pub points: Vec<BurstinessPoint>,
    /// Peak-to-median ratio (the §5.2 headline: 9:1 … 260:1).
    pub peak_to_median: f64,
}

impl Burstiness {
    /// Compute the burstiness profile of an hourly signal. Returns `None`
    /// when the signal is empty or its median is zero (ratio undefined).
    ///
    /// `percentiles` defaults (when empty) to 1..=100 in steps of 1.
    pub fn of(signal: &[f64], percentiles: &[f64]) -> Option<Burstiness> {
        if signal.is_empty() {
            return None;
        }
        let ecdf = Ecdf::new(signal.to_vec());
        let median = ecdf.median();
        if median <= 0.0 {
            return None;
        }
        let default: Vec<f64>;
        let ps: &[f64] = if percentiles.is_empty() {
            default = (1..=100).map(|i| i as f64).collect();
            &default
        } else {
            percentiles
        };
        let points: Vec<BurstinessPoint> = ps
            .iter()
            .map(|&p| BurstinessPoint {
                percentile: p,
                ratio: ecdf.quantile(p / 100.0) / median,
            })
            .collect();
        Some(Burstiness {
            points,
            peak_to_median: ecdf.max() / median,
        })
    }

    /// Ratio at a given percentile (linear scan; curves are ≤ 100 points).
    pub fn ratio_at(&self, percentile: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.percentile - percentile).abs() < 1e-9)
            .map(|p| p.ratio)
    }
}

/// Reference sinusoidal signal for Fig. 8's comparison curves:
/// `sine + offset`, sampled hourly over `hours` hours with a 24-hour
/// period. The paper scales two variants: min-max range equal to the mean
/// (`sine + 2`) and to 10 % of the mean (`sine + 20`).
pub fn sine_reference(offset: f64, hours: usize) -> Vec<f64> {
    (0..hours)
        .map(|h| (h as f64 / 24.0 * std::f64::consts::TAU).sin() + offset)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_is_vertical() {
        let b = Burstiness::of(&[5.0; 100], &[]).unwrap();
        assert!((b.peak_to_median - 1.0).abs() < 1e-12);
        assert!(b.points.iter().all(|p| (p.ratio - 1.0).abs() < 1e-12));
    }

    #[test]
    fn bursty_signal_has_high_peak_ratio() {
        let mut signal = vec![1.0; 99];
        signal.push(260.0);
        let b = Burstiness::of(&signal, &[]).unwrap();
        assert!((b.peak_to_median - 260.0).abs() < 1e-9);
        // 50th percentile is the median → ratio 1.
        assert!((b.ratio_at(50.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratios_are_monotone_in_percentile() {
        let signal: Vec<f64> = (1..=200).map(|i| (i as f64).powf(1.5)).collect();
        let b = Burstiness::of(&signal, &[]).unwrap();
        assert!(b.points.windows(2).all(|w| w[0].ratio <= w[1].ratio));
    }

    #[test]
    fn zero_median_returns_none() {
        assert!(Burstiness::of(&[0.0, 0.0, 0.0, 10.0], &[]).is_none());
        assert!(Burstiness::of(&[], &[]).is_none());
    }

    #[test]
    fn sine_reference_bounds() {
        // sine + 2 swings in [1, 3]: min-max range (2) equals the mean (2).
        let s = sine_reference(2.0, 24 * 7);
        let max = s.iter().cloned().fold(f64::MIN, f64::max);
        let min = s.iter().cloned().fold(f64::MAX, f64::min);
        assert!((max - 3.0).abs() < 1e-6);
        assert!((min - 1.0).abs() < 1e-6);
        let b = Burstiness::of(&s, &[]).unwrap();
        // Sinusoids are barely bursty: peak-to-median well under 2.
        assert!(b.peak_to_median < 2.0, "sine p2m {}", b.peak_to_median);
    }

    #[test]
    fn sine20_less_bursty_than_sine2() {
        let b2 = Burstiness::of(&sine_reference(2.0, 24 * 7), &[]).unwrap();
        let b20 = Burstiness::of(&sine_reference(20.0, 24 * 7), &[]).unwrap();
        assert!(b20.peak_to_median < b2.peak_to_median);
    }

    #[test]
    fn custom_percentiles_respected() {
        let signal: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let b = Burstiness::of(&signal, &[90.0, 99.0]).unwrap();
        assert_eq!(b.points.len(), 2);
        assert!((b.ratio_at(90.0).unwrap() - 90.0 / 50.0).abs() < 1e-9);
    }
}
