//! # swim-core
//!
//! The workload-characterization methodology of Chen, Alspaugh & Katz
//! (VLDB 2012), implemented over the `swim-trace` schema. The paper breaks
//! each MapReduce workload into three conceptual components, and so does
//! this crate:
//!
//! * **Data patterns** (§4): per-job data size distributions ([`stats`]),
//!   Zipf-like skew in file access frequency and the 80-X rule
//!   ([`access`]), and temporal locality of re-accesses ([`locality`]).
//! * **Temporal patterns** (§5): hourly multi-dimensional time series
//!   ([`timeseries`]), the nth-percentile-to-median burstiness metric
//!   ([`burstiness`]), diurnal detection by Fourier analysis ([`fourier`]),
//!   and cross-dimension correlations ([`stats::pearson`]).
//! * **Computation patterns** (§6): job-name first-word / framework
//!   analysis ([`names`]) and 6-dimensional k-means job clustering with
//!   elbow-based `k` selection ([`kmeans`]).
//!
//! [`workload::WorkloadAnalysis`] orchestrates all of it over a trace and
//! produces the serializable report types each figure/table harness
//! consumes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod access;
pub mod burstiness;
pub mod fourier;
pub mod kmeans;
pub mod locality;
pub mod names;
pub mod stats;
pub mod timeseries;
pub mod workload;

pub use kmeans::{KMeans, KMeansConfig};
pub use workload::WorkloadAnalysis;
