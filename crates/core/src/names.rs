//! Computation-pattern analysis by job name (§6.1, Fig. 10): group jobs
//! by the first word of their names, classify the originating framework,
//! and weight groups by job count, total I/O, and total task-time.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use swim_trace::{Framework, Trace};

/// How one first-word group weighs in a workload, under the three Fig. 10
/// weightings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WordGroup {
    /// The first word ("insert", "piglatin", "ad", …).
    pub word: String,
    /// Framework inferred from the word.
    pub framework: Framework,
    /// Number of jobs in the group.
    pub jobs: u64,
    /// Σ total I/O bytes of the group.
    pub bytes: f64,
    /// Σ task-seconds of the group.
    pub task_seconds: f64,
}

/// Full name analysis for one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NameAnalysis {
    /// Groups sorted by job count, descending.
    pub groups: Vec<WordGroup>,
    /// Jobs with no (or unparseable) name.
    pub unnamed_jobs: u64,
    /// Total jobs in the trace.
    pub total_jobs: u64,
    /// Total I/O bytes in the trace.
    pub total_bytes: f64,
    /// Total task-seconds in the trace.
    pub total_task_seconds: f64,
}

/// Classify a first word into its framework, following the §6.1
/// conventions: Hive queries start with SQL-ish verbs, Pig jobs with
/// `piglatin`, Oozie launchers with `oozie`.
pub fn classify_framework(word: &str) -> Framework {
    match word {
        "insert" | "select" | "from" | "create" | "drop" | "alter" => Framework::Hive,
        "piglatin" | "pig" => Framework::Pig,
        "oozie" => Framework::Oozie,
        _ => Framework::Native,
    }
}

impl NameAnalysis {
    /// Analyze a trace's job names.
    pub fn of(trace: &Trace) -> NameAnalysis {
        let mut groups: HashMap<String, WordGroup> = HashMap::new();
        let mut unnamed = 0u64;
        let mut total_bytes = 0.0;
        let mut total_task_seconds = 0.0;
        for job in trace.jobs() {
            let bytes = job.total_io().as_f64();
            let task_seconds = job.total_task_time().as_f64();
            total_bytes += bytes;
            total_task_seconds += task_seconds;
            match job.name_first_word() {
                Some(word) => {
                    let entry = groups.entry(word.clone()).or_insert_with(|| WordGroup {
                        framework: classify_framework(&word),
                        word,
                        jobs: 0,
                        bytes: 0.0,
                        task_seconds: 0.0,
                    });
                    entry.jobs += 1;
                    entry.bytes += bytes;
                    entry.task_seconds += task_seconds;
                }
                None => unnamed += 1,
            }
        }
        let mut groups: Vec<WordGroup> = groups.into_values().collect();
        groups.sort_by(|a, b| b.jobs.cmp(&a.jobs).then(a.word.cmp(&b.word)));
        NameAnalysis {
            groups,
            unnamed_jobs: unnamed,
            total_jobs: trace.len() as u64,
            total_bytes,
            total_task_seconds,
        }
    }

    /// `true` iff the trace carried usable names.
    pub fn has_names(&self) -> bool {
        !self.groups.is_empty()
    }

    /// Fraction of jobs covered by the `k` most frequent words — the §6.1
    /// "top handful of words account for a dominant majority of jobs".
    pub fn top_k_job_share(&self, k: usize) -> f64 {
        if self.total_jobs == 0 {
            return 0.0;
        }
        let covered: u64 = self.groups.iter().take(k).map(|g| g.jobs).sum();
        covered as f64 / self.total_jobs as f64
    }

    /// Per-framework share of jobs, bytes, and task-seconds — the Fig. 10
    /// color breakdown and the §6.1 framework-load question ("up to 80 %
    /// and at least 20 %").
    pub fn framework_shares(&self) -> Vec<FrameworkShare> {
        let mut acc: HashMap<Framework, FrameworkShare> = HashMap::new();
        for g in &self.groups {
            let e = acc.entry(g.framework).or_insert(FrameworkShare {
                framework: g.framework,
                jobs: 0.0,
                bytes: 0.0,
                task_seconds: 0.0,
            });
            e.jobs += g.jobs as f64;
            e.bytes += g.bytes;
            e.task_seconds += g.task_seconds;
        }
        let mut out: Vec<FrameworkShare> = acc
            .into_values()
            .map(|mut s| {
                if self.total_jobs > 0 {
                    s.jobs /= self.total_jobs as f64;
                }
                if self.total_bytes > 0.0 {
                    s.bytes /= self.total_bytes;
                }
                if self.total_task_seconds > 0.0 {
                    s.task_seconds /= self.total_task_seconds;
                }
                s
            })
            .collect();
        out.sort_by(|a, b| b.jobs.partial_cmp(&a.jobs).expect("finite"));
        out
    }

    /// Groups re-sorted by a chosen weighting (the three Fig. 10 panels).
    pub fn sorted_by(&self, weight: Weighting) -> Vec<WordGroup> {
        let mut gs = self.groups.clone();
        match weight {
            Weighting::Jobs => gs.sort_by_key(|g| std::cmp::Reverse(g.jobs)),
            Weighting::Bytes => gs.sort_by(|a, b| b.bytes.partial_cmp(&a.bytes).expect("finite")),
            Weighting::TaskTime => {
                gs.sort_by(|a, b| b.task_seconds.partial_cmp(&a.task_seconds).expect("finite"))
            }
        }
        gs
    }
}

/// Per-framework normalized shares.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameworkShare {
    /// The framework.
    pub framework: Framework,
    /// Share of jobs in `[0,1]`.
    pub jobs: f64,
    /// Share of I/O bytes in `[0,1]`.
    pub bytes: f64,
    /// Share of task-seconds in `[0,1]`.
    pub task_seconds: f64,
}

/// The three Fig. 10 weightings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Weighting {
    /// Weight groups by number of jobs (Fig. 10 top).
    Jobs,
    /// Weight groups by total I/O (Fig. 10 middle).
    Bytes,
    /// Weight groups by task-time (Fig. 10 bottom).
    TaskTime,
}

#[cfg(test)]
mod tests {
    use super::*;
    use swim_trace::trace::WorkloadKind;
    use swim_trace::{DataSize, Dur, JobBuilder, Timestamp};

    fn named_job(id: u64, name: &str, io_mb: u64, task_secs: u64) -> swim_trace::Job {
        JobBuilder::new(id)
            .name(name)
            .submit(Timestamp::from_secs(id))
            .duration(Dur::from_secs(1))
            .input(DataSize::from_mb(io_mb))
            .map_task_time(Dur::from_secs(task_secs))
            .tasks(1, 0)
            .build()
            .unwrap()
    }

    fn trace(jobs: Vec<swim_trace::Job>) -> Trace {
        Trace::new(WorkloadKind::Custom("names".into()), 1, jobs).unwrap()
    }

    #[test]
    fn groups_by_first_word() {
        let t = trace(vec![
            named_job(0, "insert_001", 1, 1),
            named_job(1, "insert_002", 1, 1),
            named_job(2, "piglatin_job", 1, 1),
        ]);
        let a = NameAnalysis::of(&t);
        assert_eq!(a.groups.len(), 2);
        assert_eq!(a.groups[0].word, "insert");
        assert_eq!(a.groups[0].jobs, 2);
        assert_eq!(a.groups[0].framework, Framework::Hive);
        assert_eq!(a.groups[1].framework, Framework::Pig);
    }

    #[test]
    fn unnamed_jobs_counted_separately() {
        let t = trace(vec![named_job(0, "", 1, 1), named_job(1, "ad_x", 1, 1)]);
        let a = NameAnalysis::of(&t);
        assert_eq!(a.unnamed_jobs, 1);
        assert_eq!(a.total_jobs, 2);
    }

    #[test]
    fn top_k_share() {
        let t = trace(vec![
            named_job(0, "ad 1", 1, 1),
            named_job(1, "ad 2", 1, 1),
            named_job(2, "ad 3", 1, 1),
            named_job(3, "etl", 1, 1),
        ]);
        let a = NameAnalysis::of(&t);
        assert!((a.top_k_job_share(1) - 0.75).abs() < 1e-12);
        assert!((a.top_k_job_share(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn framework_shares_normalize() {
        let t = trace(vec![
            named_job(0, "insert a", 100, 10),
            named_job(1, "select b", 100, 10),
            named_job(2, "custom c", 200, 80),
        ]);
        let a = NameAnalysis::of(&t);
        let shares = a.framework_shares();
        let hive = shares
            .iter()
            .find(|s| s.framework == Framework::Hive)
            .unwrap();
        let native = shares
            .iter()
            .find(|s| s.framework == Framework::Native)
            .unwrap();
        assert!((hive.jobs - 2.0 / 3.0).abs() < 1e-12);
        assert!((hive.bytes - 0.5).abs() < 1e-12);
        assert!((native.task_seconds - 0.8).abs() < 1e-12);
    }

    #[test]
    fn weighting_reorders_groups() {
        let t = trace(vec![
            named_job(0, "ad 1", 1, 1),
            named_job(1, "ad 2", 1, 1),
            named_job(2, "from q", 1_000_000, 5_000),
        ]);
        let a = NameAnalysis::of(&t);
        assert_eq!(a.sorted_by(Weighting::Jobs)[0].word, "ad");
        assert_eq!(a.sorted_by(Weighting::Bytes)[0].word, "from");
        assert_eq!(a.sorted_by(Weighting::TaskTime)[0].word, "from");
    }

    #[test]
    fn classify_framework_covers_conventions() {
        assert_eq!(classify_framework("insert"), Framework::Hive);
        assert_eq!(classify_framework("from"), Framework::Hive);
        assert_eq!(classify_framework("piglatin"), Framework::Pig);
        assert_eq!(classify_framework("oozie"), Framework::Oozie);
        assert_eq!(classify_framework("ad"), Framework::Native);
    }

    #[test]
    fn nameless_trace_has_no_groups() {
        let t = trace(vec![named_job(0, "", 1, 1)]);
        let a = NameAnalysis::of(&t);
        assert!(!a.has_names());
        assert_eq!(a.top_k_job_share(5), 0.0);
    }
}
