//! K-means clustering of jobs in the six-dimensional behaviour space
//! (§6.2, Table 2): input, shuffle, output bytes; duration; map and
//! reduce task-time.
//!
//! The paper's methodology (from the authors' earlier MASCOTS'11 work):
//! run k-means for increasing `k` and stop when the decrease in residual
//! (intra-cluster) variance shows diminishing returns — the elbow rule.
//! Cluster centers are then labelled with common terminology ("Small
//! jobs", "Map only transform", "Aggregate", …) from the one or two
//! dimensions that separate them.
//!
//! Feature scaling is an explicit, ablatable choice: job dimensions span
//! nine orders of magnitude, so the default is `log1p` + z-score; raw
//! features reproduce the paper's literal procedure.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use swim_trace::{DataSize, Dur, Job, Trace};

/// Feature preprocessing applied before clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureScaling {
    /// Cluster the raw byte/second values (the paper's literal procedure).
    Raw,
    /// `ln(1+x)` then per-dimension z-score (numerically robust default).
    LogZScore,
}

/// Configuration for [`KMeans`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// RNG seed for centroid initialization (k-means++).
    pub seed: u64,
    /// Feature preprocessing.
    pub scaling: FeatureScaling,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 4,
            max_iters: 100,
            seed: 0,
            scaling: FeatureScaling::LogZScore,
        }
    }
}

/// One fitted cluster, reported in original (unscaled) units as a Table 2
/// row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Number of member jobs.
    pub count: u64,
    /// Centroid input bytes.
    pub input: DataSize,
    /// Centroid shuffle bytes.
    pub shuffle: DataSize,
    /// Centroid output bytes.
    pub output: DataSize,
    /// Centroid duration.
    pub duration: Dur,
    /// Centroid map task-time.
    pub map_time: Dur,
    /// Centroid reduce task-time.
    pub reduce_time: Dur,
    /// Heuristic label in the paper's vocabulary.
    pub label: String,
}

/// A fitted k-means model.
///
/// ```
/// use swim_core::{KMeans, KMeansConfig};
/// use swim_trace::trace::WorkloadKind;
/// use swim_trace::{DataSize, Dur, JobBuilder, Timestamp, Trace};
///
/// // 40 small jobs and 4 huge ones: the small/large dichotomy of Table 2.
/// let jobs = (0..44u64)
///     .map(|i| {
///         let huge = i % 11 == 10;
///         JobBuilder::new(i)
///             .submit(Timestamp::from_secs(i * 60))
///             .input(if huge { DataSize::from_tb(2) } else { DataSize::from_mb(8) })
///             .map_task_time(Dur::from_secs(if huge { 90_000 } else { 30 }))
///             .tasks(2, 0)
///             .build()
///             .unwrap()
///     })
///     .collect();
/// let trace = Trace::new(WorkloadKind::Custom("demo".into()), 10, jobs).unwrap();
///
/// let model = KMeans::fit(&trace, KMeansConfig { k: 2, ..Default::default() });
/// // Clusters come back in population order; the small-job blob dominates.
/// assert_eq!(model.clusters.len(), 2);
/// assert_eq!(model.clusters[0].count, 40);
/// assert_eq!(model.clusters[0].label, "Small jobs");
/// assert_eq!(model.assignments.len(), trace.len());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    /// Configuration used.
    pub config: KMeansConfig,
    /// Fitted clusters, sorted by population (largest first — Table 2 order).
    pub clusters: Vec<Cluster>,
    /// Residual (total intra-cluster) variance in scaled feature space.
    pub inertia: f64,
    /// Per-job cluster assignment, parallel to the input job order.
    pub assignments: Vec<usize>,
}

/// Per-dimension scaling parameters recovered during preprocessing.
struct Scaler {
    scaling: FeatureScaling,
    mean: [f64; 6],
    std: [f64; 6],
}

impl Scaler {
    fn fit(features: &[[f64; 6]], scaling: FeatureScaling) -> Scaler {
        let mut mean = [0.0; 6];
        let mut std = [1.0; 6];
        if scaling == FeatureScaling::LogZScore && !features.is_empty() {
            let n = features.len() as f64;
            for d in 0..6 {
                let m: f64 = features.iter().map(|f| f[d].ln_1p()).sum::<f64>() / n;
                let v: f64 = features
                    .iter()
                    .map(|f| (f[d].ln_1p() - m).powi(2))
                    .sum::<f64>()
                    / n;
                mean[d] = m;
                std[d] = v.sqrt().max(1e-12);
            }
        }
        Scaler { scaling, mean, std }
    }

    fn transform(&self, f: &[f64; 6]) -> [f64; 6] {
        match self.scaling {
            FeatureScaling::Raw => *f,
            FeatureScaling::LogZScore => {
                let mut out = [0.0; 6];
                for d in 0..6 {
                    out[d] = (f[d].ln_1p() - self.mean[d]) / self.std[d];
                }
                out
            }
        }
    }
}

fn sq_dist(a: &[f64; 6], b: &[f64; 6]) -> f64 {
    let mut s = 0.0;
    for d in 0..6 {
        let diff = a[d] - b[d];
        s += diff * diff;
    }
    s
}

impl KMeans {
    /// Fit k-means over a trace's jobs. Panics if the trace has fewer jobs
    /// than clusters.
    pub fn fit(trace: &Trace, config: KMeansConfig) -> KMeans {
        let features: Vec<[f64; 6]> = trace.jobs().iter().map(|j| j.feature_vector()).collect();
        Self::fit_features(&features, trace.jobs(), config)
    }

    fn fit_features(raw: &[[f64; 6]], jobs: &[Job], config: KMeansConfig) -> KMeans {
        assert!(config.k >= 1, "k must be at least 1");
        assert!(
            raw.len() >= config.k,
            "need at least k = {} jobs, got {}",
            config.k,
            raw.len()
        );
        let scaler = Scaler::fit(raw, config.scaling);
        let points: Vec<[f64; 6]> = raw.iter().map(|f| scaler.transform(f)).collect();

        // Best of a few k-means++ restarts: single-init Lloyd can land in a
        // poor local minimum, which makes the elbow criterion unstable.
        // k = 1 is seed-independent (the centroid is the global mean), so
        // one run suffices there.
        const RESTARTS: u64 = 4;
        let restarts = if config.k == 1 { 1 } else { RESTARTS };
        let (assignments, inertia) = (0..restarts)
            .map(|r| {
                lloyd(
                    &points,
                    config,
                    config.seed.wrapping_add(r.wrapping_mul(0x9E37_79B9)),
                )
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite inertia"))
            .expect("at least one restart");

        // Report centroids in original units as per-cluster medians (robust
        // against the heavy within-cluster tails), labelled heuristically.
        let mut clusters: Vec<Cluster> = (0..config.k)
            .map(|c| {
                let members: Vec<&Job> = jobs
                    .iter()
                    .zip(&assignments)
                    .filter(|(_, &a)| a == c)
                    .map(|(j, _)| j)
                    .collect();
                cluster_from_members(&members)
            })
            .collect();

        // Table 2 orders clusters by population, largest first; remap
        // assignments to the sorted order.
        let mut order: Vec<usize> = (0..config.k).collect();
        order.sort_by(|&a, &b| clusters[b].count.cmp(&clusters[a].count));
        let mut remap = vec![0usize; config.k];
        for (new_idx, &old_idx) in order.iter().enumerate() {
            remap[old_idx] = new_idx;
        }
        clusters.sort_by_key(|c| std::cmp::Reverse(c.count));
        let assignments = assignments.into_iter().map(|a| remap[a]).collect();

        KMeans {
            config,
            clusters,
            inertia,
            assignments,
        }
    }

    /// Fit for increasing `k` and pick the elbow: the smallest `k` whose
    /// incremental inertia reduction falls below `threshold`, measured as
    /// a fraction of the total (k = 1) variance. Normalizing against the
    /// k = 1 baseline rather than the previous inertia keeps the rule
    /// stable on well-separated clusters, where every further split still
    /// halves an already-tiny residual. Returns the chosen model.
    pub fn fit_with_elbow(
        trace: &Trace,
        max_k: usize,
        threshold: f64,
        base: KMeansConfig,
    ) -> KMeans {
        assert!(max_k >= 1);
        let mut total: f64 = 0.0;
        let mut prev: Option<KMeans> = None;
        for k in 1..=max_k.min(trace.len()) {
            let model = KMeans::fit(trace, KMeansConfig { k, ..base });
            if k == 1 {
                total = model.inertia;
            }
            if let Some(p) = &prev {
                let drop = if total > 0.0 {
                    (p.inertia - model.inertia) / total
                } else {
                    0.0
                };
                if drop < threshold {
                    return prev.expect("set above");
                }
            }
            prev = Some(model);
        }
        prev.expect("max_k >= 1")
    }
}

/// One k-means++-initialized Lloyd run; returns the assignment vector and
/// its residual intra-cluster variance.
fn lloyd(points: &[[f64; 6]], config: KMeansConfig, seed: u64) -> (Vec<usize>, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut centroids = kmeanspp_init(points, config.k, &mut rng);
    let mut assignments = vec![0usize; points.len()];

    for _ in 0..config.max_iters {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let nearest = centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| sq_dist(p, a).partial_cmp(&sq_dist(p, b)).expect("finite"))
                .map(|(idx, _)| idx)
                .expect("k >= 1");
            if assignments[i] != nearest {
                assignments[i] = nearest;
                changed = true;
            }
        }
        // Recompute centroids; empty clusters are re-seeded at the
        // point farthest from its centroid to keep k populated.
        let mut sums = vec![[0.0; 6]; config.k];
        let mut counts = vec![0u64; config.k];
        for (i, p) in points.iter().enumerate() {
            let c = assignments[i];
            counts[c] += 1;
            for d in 0..6 {
                sums[c][d] += p[d];
            }
        }
        for c in 0..config.k {
            if counts[c] == 0 {
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(i, p), (j, q)| {
                        sq_dist(p, &centroids[assignments[*i]])
                            .partial_cmp(&sq_dist(q, &centroids[assignments[*j]]))
                            .expect("finite")
                    })
                    .map(|(i, _)| i)
                    .expect("non-empty points");
                centroids[c] = points[far];
                changed = true;
            } else {
                for d in 0..6 {
                    centroids[c][d] = sums[c][d] / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let inertia: f64 = points
        .iter()
        .zip(&assignments)
        .map(|(p, &c)| sq_dist(p, &centroids[c]))
        .sum();
    (assignments, inertia)
}

/// k-means++ initialization: first centroid uniform, subsequent ones
/// sampled with probability proportional to squared distance from the
/// nearest existing centroid.
fn kmeanspp_init<R: Rng + ?Sized>(points: &[[f64; 6]], k: usize, rng: &mut R) -> Vec<[f64; 6]> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..points.len())]);
    let mut d2: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with existing centroids; pick uniformly.
            rng.random_range(0..points.len())
        } else {
            let mut target = rng.random::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(points[next]);
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(sq_dist(p, centroids.last().expect("just pushed")));
        }
    }
    centroids
}

fn median_of(mut values: Vec<f64>) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    values[values.len() / 2]
}

fn cluster_from_members(members: &[&Job]) -> Cluster {
    let input = median_of(members.iter().map(|j| j.input.as_f64()).collect());
    let shuffle = median_of(members.iter().map(|j| j.shuffle.as_f64()).collect());
    let output = median_of(members.iter().map(|j| j.output.as_f64()).collect());
    let duration = median_of(members.iter().map(|j| j.duration.as_f64()).collect());
    let map_time = median_of(members.iter().map(|j| j.map_task_time.as_f64()).collect());
    let reduce_time = median_of(
        members
            .iter()
            .map(|j| j.reduce_task_time.as_f64())
            .collect(),
    );
    let c = Cluster {
        count: members.len() as u64,
        input: DataSize::from_f64(input),
        shuffle: DataSize::from_f64(shuffle),
        output: DataSize::from_f64(output),
        duration: Dur::from_f64(duration),
        map_time: Dur::from_f64(map_time),
        reduce_time: Dur::from_f64(reduce_time),
        label: String::new(),
    };
    Cluster {
        label: label_cluster(&c),
        ..c
    }
}

/// Heuristic cluster labelling in the paper's Table 2 vocabulary, driven
/// by the data ratios between stages:
///
/// * tiny total data → "Small jobs";
/// * no reduce stage → "Map only" + transform/aggregate/summary by
///   output:input ratio;
/// * output ≪ input → "Aggregate"; output ≫ input → "Expand";
/// * otherwise → "Transform"; very long jobs gain a duration suffix.
pub fn label_cluster(c: &Cluster) -> String {
    let total = c.input + c.shuffle + c.output;
    if total < DataSize::from_gb(10) && c.duration < Dur::from_mins(10) {
        return "Small jobs".to_owned();
    }
    let input = c.input.as_f64().max(1.0);
    let output = c.output.as_f64().max(1.0);
    let ratio = output / input;
    let map_only = c.shuffle.is_zero() && c.reduce_time.is_zero();
    let base = if map_only {
        if ratio < 0.01 {
            "Map only summary"
        } else if ratio < 0.5 {
            "Map only aggregate"
        } else {
            "Map only transform"
        }
    } else if ratio < 0.1 {
        "Aggregate"
    } else if ratio > 10.0 {
        "Expand"
    } else {
        "Transform"
    };
    if c.duration >= Dur::from_hours(12) {
        format!("{base}, long")
    } else {
        base.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swim_trace::trace::WorkloadKind;
    use swim_trace::{JobBuilder, Timestamp};

    /// Deterministic multiplicative jitter in (0.8, 1.25), independent per
    /// call — keeps within-cluster spread continuous in all six dimensions
    /// so the elbow criterion sees two blobs, not lattice sub-structure.
    struct Jitter(u64);
    impl Jitter {
        fn next(&mut self) -> f64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (self.0 >> 33) as f64 / (1u64 << 31) as f64; // [0, 1)
            0.8 * 1.5625f64.powf(u) // log-uniform in [0.8, 1.25]
        }
    }

    /// Two well-separated synthetic populations: tiny jobs and huge jobs.
    fn bimodal_trace(n_small: usize, n_big: usize) -> Trace {
        let mut jobs = Vec::new();
        let mut jit = Jitter(0x5EED);
        for i in 0..n_small {
            let mut j = |v: f64| (v * jit.next()) as u64;
            jobs.push(
                JobBuilder::new(i as u64)
                    .submit(Timestamp::from_secs(i as u64))
                    .duration(Dur::from_secs(j(30.0).max(1)))
                    .input(DataSize::from_bytes(j(20_000.0)))
                    .output(DataSize::from_bytes(j(800_000.0)))
                    .map_task_time(Dur::from_secs(j(20.0).max(1)))
                    .tasks(1, 0)
                    .build()
                    .unwrap(),
            );
        }
        for i in 0..n_big {
            let id = (n_small + i) as u64;
            let mut j = |v: f64| (v * jit.next()) as u64;
            jobs.push(
                JobBuilder::new(id)
                    .submit(Timestamp::from_secs(id))
                    .duration(Dur::from_secs(j(5400.0)))
                    .input(DataSize::from_bytes(j(400e9)))
                    .shuffle(DataSize::from_bytes(j(2e12)))
                    .output(DataSize::from_bytes(j(45e9)))
                    .map_task_time(Dur::from_secs(j(1_000_000.0)))
                    .reduce_task_time(Dur::from_secs(j(900_000.0)))
                    .tasks(1000, 100)
                    .build()
                    .unwrap(),
            );
        }
        Trace::new(WorkloadKind::Custom("bimodal".into()), 1, jobs).unwrap()
    }

    #[test]
    fn separates_bimodal_population() {
        let t = bimodal_trace(900, 100);
        let m = KMeans::fit(
            &t,
            KMeansConfig {
                k: 2,
                ..Default::default()
            },
        );
        assert_eq!(m.clusters.len(), 2);
        assert_eq!(m.clusters[0].count, 900);
        assert_eq!(m.clusters[1].count, 100);
        assert_eq!(m.clusters[0].label, "Small jobs");
        assert!(m.clusters[1].input > DataSize::from_gb(100));
    }

    #[test]
    fn assignments_match_cluster_sizes() {
        let t = bimodal_trace(50, 50);
        let m = KMeans::fit(
            &t,
            KMeansConfig {
                k: 2,
                ..Default::default()
            },
        );
        for (c_idx, cluster) in m.clusters.iter().enumerate() {
            let assigned = m.assignments.iter().filter(|&&a| a == c_idx).count() as u64;
            assert_eq!(assigned, cluster.count);
        }
    }

    #[test]
    fn inertia_non_increasing_in_k() {
        let t = bimodal_trace(300, 60);
        let mut last = f64::INFINITY;
        for k in 1..=5 {
            let m = KMeans::fit(
                &t,
                KMeansConfig {
                    k,
                    seed: 42,
                    ..Default::default()
                },
            );
            assert!(
                m.inertia <= last + 1e-6,
                "inertia increased at k={k}: {} > {last}",
                m.inertia
            );
            last = m.inertia;
        }
    }

    #[test]
    fn elbow_picks_two_for_bimodal() {
        let t = bimodal_trace(500, 100);
        let m = KMeans::fit_with_elbow(&t, 8, 0.25, KMeansConfig::default());
        assert_eq!(m.config.k, 2, "elbow chose k = {}", m.config.k);
    }

    #[test]
    fn raw_scaling_is_dominated_by_biggest_dimension() {
        // With raw features the shuffle-TB dimension dwarfs everything;
        // the fit still separates bimodal data but inertia is huge.
        let t = bimodal_trace(100, 100);
        let m = KMeans::fit(
            &t,
            KMeansConfig {
                k: 2,
                scaling: FeatureScaling::Raw,
                ..Default::default()
            },
        );
        assert_eq!(m.clusters.len(), 2);
        assert_eq!(m.clusters[0].count, 100);
    }

    #[test]
    fn deterministic_under_seed() {
        let t = bimodal_trace(200, 40);
        let a = KMeans::fit(
            &t,
            KMeansConfig {
                seed: 7,
                ..Default::default()
            },
        );
        let b = KMeans::fit(
            &t,
            KMeansConfig {
                seed: 7,
                ..Default::default()
            },
        );
        assert_eq!(a.clusters, b.clusters);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn labels_cover_paper_vocabulary() {
        let mk =
            |input: DataSize, shuffle: DataSize, output: DataSize, dur: Dur, rt: Dur| Cluster {
                count: 1,
                input,
                shuffle,
                output,
                duration: dur,
                map_time: Dur::from_secs(100),
                reduce_time: rt,
                label: String::new(),
            };
        // Small.
        assert_eq!(
            label_cluster(&mk(
                DataSize::from_kb(21),
                DataSize::ZERO,
                DataSize::from_kb(871),
                Dur::from_secs(32),
                Dur::ZERO
            )),
            "Small jobs"
        );
        // Map-only summary: 3 TB → 200 B.
        assert_eq!(
            label_cluster(&mk(
                DataSize::from_tb(3),
                DataSize::ZERO,
                DataSize::from_bytes(200),
                Dur::from_mins(5),
                Dur::ZERO
            )),
            "Map only summary"
        );
        // Aggregate: 4.7 TB → 24 MB with a reduce stage.
        assert_eq!(
            label_cluster(&mk(
                DataSize::from_tb(4),
                DataSize::from_mb(374),
                DataSize::from_mb(24),
                Dur::from_mins(9),
                Dur::from_secs(705)
            )),
            "Aggregate"
        );
        // Expand: output ≫ input.
        assert_eq!(
            label_cluster(&mk(
                DataSize::from_kb(400),
                DataSize::ZERO,
                DataSize::from_gb(447),
                Dur::from_hours(1),
                Dur::from_secs(10)
            )),
            "Expand"
        );
        // Long suffix.
        assert_eq!(
            label_cluster(&mk(
                DataSize::from_gb(630),
                DataSize::from_tb(1),
                DataSize::from_gb(140),
                Dur::from_hours(18),
                Dur::from_secs(10)
            )),
            "Transform, long"
        );
    }

    #[test]
    #[should_panic(expected = "need at least k")]
    fn rejects_fewer_jobs_than_k() {
        let t = bimodal_trace(2, 0);
        KMeans::fit(
            &t,
            KMeansConfig {
                k: 5,
                ..Default::default()
            },
        );
    }
}
