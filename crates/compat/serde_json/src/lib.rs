//! Offline stand-in for `serde_json`: JSON text ⇄ [`serde::Value`] with the
//! `to_string` / `to_string_pretty` / `to_writer` / `from_str` / `json!`
//! surface the workspace uses.
//!
//! Numbers are kept exact for the full `u64`/`i64` range (job ids and byte
//! counts need every bit); floats round-trip through Rust's shortest
//! `Display` form. Non-finite floats serialize as `null`, which reads back
//! as NaN.

#![warn(missing_docs)]

use std::fmt;
use std::io::Write;

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// JSON (de)serialization failure.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error::new(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::new(e)
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Rebuild a deserializable type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialize compact JSON into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Parse JSON text into a deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

/// Build a [`Value`] object literal: `json!({ "k": expr, ... })`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($k:literal : $v:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($k.to_string(), $crate::to_value(&$v))),*
        ])
    };
    ([ $($v:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::to_value(&$v)),*])
    };
    ($v:expr) => { $crate::to_value(&$v) };
}

// ---- printer ----------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // Shortest round-trip form; integral floats keep a ".0" so
                // the type survives a Value-level round trip.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser -----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected byte `{}` at {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // byte boundaries are valid).
                    let start = self.pos;
                    let s = &self.bytes[start..];
                    let len = utf8_len(s[0]);
                    let chunk = std::str::from_utf8(&s[..len])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in [
            "0",
            "18446744073709551615",
            "-42",
            "1.5",
            "true",
            "false",
            "null",
            "\"hi\"",
        ] {
            let v = parse_value(text).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            assert_eq!(out, text, "round-trip of {text}");
        }
    }

    #[test]
    fn string_escapes() {
        let v = parse_value(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v, Value::Str("a\"b\\c\nd\u{41}".into()));
        let s = to_string(&"tab\there").unwrap();
        assert_eq!(s, r#""tab\there""#);
    }

    #[test]
    fn surrogate_pairs() {
        let v = parse_value(r#""😀""#).unwrap();
        assert_eq!(v, Value::Str("😀".into()));
    }

    #[test]
    fn nested_containers() {
        let v = parse_value(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("{").is_err());
        assert!(parse_value("").is_err());
    }

    #[test]
    fn pretty_printing_indents() {
        let v = parse_value(r#"{"a":1}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": 1\n}");
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({ "kind": "x", "machines": 3u32 });
        assert_eq!(v.get("machines"), Some(&Value::U64(3)));
    }

    #[test]
    fn float_display_round_trips() {
        let v = Value::F64(0.1 + 0.2);
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        let back = parse_value(&out).unwrap();
        assert_eq!(back, v);
    }
}
