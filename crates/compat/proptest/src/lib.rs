//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace uses as a *sampling*
//! property-test harness: strategies generate random values from a
//! deterministic per-test RNG and the body runs for a configured number of
//! cases. There is no shrinking — a failing case reports its inputs via
//! the `prop_assert*` message and the deterministic seed (derived from the
//! test's module path and name) makes reruns reproduce it exactly.
//!
//! Supported surface: `proptest! { ... }` with `#![proptest_config]`,
//! `Strategy` (ranges, tuples, `Vec<S>`, simple `[c1-c2]{m,n}` string
//! regexes), `prop_map`, `prop_flat_map`, `any::<T>()`,
//! `prop::collection::vec`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assume!`.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic test RNG (xoshiro256++ seeded by splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed deterministically.
    pub fn seed(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// FNV-1a hash used to derive per-test seeds from test names.
pub const fn fnv(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        i += 1;
    }
    hash
}

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then a dependent strategy from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Constant strategy (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

/// `&str` strategies: a small regex subset `[c1-c2]{m,n}` / `[c1-c2]{n}` /
/// `[c1-c2]*` / `[c1-c2]+`, matching how the workspace generates names.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (lo, hi, min, max) = parse_char_class_regex(self).unwrap_or_else(|| {
            panic!(
                "proptest shim: unsupported string regex {self:?} (expected `[a-z]{{m,n}}` form)"
            )
        });
        let span = (hi as u32 - lo as u32 + 1) as u64;
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| char::from_u32(lo as u32 + rng.below(span) as u32).unwrap())
            .collect()
    }
}

fn parse_char_class_regex(re: &str) -> Option<(char, char, usize, usize)> {
    let rest = re.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut chars = class.chars();
    let (lo, hi) = match (chars.next(), chars.next(), chars.next(), chars.next()) {
        (Some(lo), Some('-'), Some(hi), None) => (lo, hi),
        (Some(c), None, None, None) => (c, c),
        _ => return None,
    };
    if rest == "*" {
        return Some((lo, hi, 0, 8));
    }
    if rest == "+" {
        return Some((lo, hi, 1, 8));
    }
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((lo, hi, min, max))
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
    (A:0, B:1, C:2, D:3, E:4, F:5, G:6)
    (A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7)
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

/// Types with a default whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Sample from the full domain of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite floats spanning many magnitudes.
        let mag = rng.unit_f64() * 600.0 - 300.0;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * 10f64.powf(mag)
    }
}

/// The `any::<T>()` whole-domain strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy producing `Vec`s with lengths from the size range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace mirror of proptest's `prop::` re-exports.
pub mod prop {
    pub use crate::collection;
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a proptest body (reports the failing case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                __l,
                __r
            ));
        }
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                __l
            ));
        }
    }};
}

/// Skip a sampled case that does not meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// The `proptest!` block: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __seed = $crate::fnv(::std::concat!(
                ::std::module_path!(), "::", ::std::stringify!($name)
            ));
            let mut __rng = $crate::TestRng::seed(__seed);
            for __case in 0..__config.cases {
                $(let $pat = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                let __result: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__msg) = __result {
                    ::std::panic!(
                        "proptest case {}/{} (seed {}) failed:\n{}",
                        __case + 1, __config.cases, __seed, __msg
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_subset_parses() {
        let mut rng = crate::TestRng::seed(1);
        let s = "[a-z]{0,12}";
        for _ in 0..100 {
            let v = crate::Strategy::sample(&s, &mut rng);
            assert!(v.len() <= 12);
            assert!(v.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn determinism() {
        let strat = (0u64..100, 0.0f64..1.0);
        let mut a = crate::TestRng::seed(9);
        let mut b = crate::TestRng::seed(9);
        for _ in 0..50 {
            assert_eq!(
                crate::Strategy::sample(&strat, &mut a).0,
                crate::Strategy::sample(&strat, &mut b).0
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_cases(x in 0u64..100, v in prop::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 4);
            prop_assume!(x != 1000); // always true: exercise the macro
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }

        #[test]
        fn flat_map_and_map_compose(n in (1usize..5).prop_flat_map(|n| {
            prop::collection::vec(0u32..10, n..n + 1).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(n.0, n.1.len());
        }
    }
}
