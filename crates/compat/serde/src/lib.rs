//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so the workspace vendors
//! a minimal serialization framework with the same *spelling* as serde:
//! `#[derive(Serialize, Deserialize)]`, `#[serde(transparent)]`,
//! `#[serde(default, skip_serializing_if = "...")]`, and a `serde_json`
//! companion. Instead of serde's zero-copy visitor architecture, both
//! traits go through an owned [`Value`] tree — ample for the workspace's
//! uses (codec metadata, metric exports, round-trip tests).

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-shaped value tree.
///
/// Integers keep their signedness so `u64` round-trips bit-exactly
/// (job ids and byte counts use the full range).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrow as array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up an object key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Look up a key in object entries (used by derived code).
pub fn obj_get<'v>(obj: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization failure.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Build an error from any message.
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError {
            msg: msg.to_string(),
        }
    }

    /// A required field was absent.
    pub fn missing(field: &str, ty: &str) -> DeError {
        DeError {
            msg: format!("missing field `{field}` while deserializing {ty}"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Serialize into a [`Value`] tree.
pub trait Serialize {
    /// Produce the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Deserialize from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls --------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    other => {
                        return Err(DeError::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::custom(format!("integer {n} overflows i64")))?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            // serde_json has no representation for non-finite floats; we
            // write them as null and read null back as NaN.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

// ---- container impls --------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of length {N}, got {n}")))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom("expected object for map"))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys for stable output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom("expected object for map"))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v
                    .as_array()
                    .ok_or_else(|| DeError::custom("expected array for tuple"))?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected {expected}-tuple, got array of {}",
                        arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
    (A:0, B:1, C:2, D:3, E:4, F:5, G:6)
    (A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_round_trip() {
        let v = Option::<u32>::None.to_value();
        assert_eq!(v, Value::Null);
        assert_eq!(Option::<u32>::from_value(&v).unwrap(), None);
        let v = Some(3u32).to_value();
        assert_eq!(Option::<u32>::from_value(&v).unwrap(), Some(3));
    }

    #[test]
    fn u64_full_range() {
        let v = u64::MAX.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), u64::MAX);
    }

    #[test]
    fn signed_negatives() {
        let v = (-5i64).to_value();
        assert_eq!(i64::from_value(&v).unwrap(), -5);
        assert!(u64::from_value(&v).is_err());
    }

    #[test]
    fn tuple_len_mismatch_rejected() {
        let v = Value::Array(vec![Value::U64(1)]);
        assert!(<(u64, u64)>::from_value(&v).is_err());
    }

    #[test]
    fn array_round_trip() {
        let v = [1.0f64, 2.0, 3.0].to_value();
        let back: [f64; 3] = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, [1.0, 2.0, 3.0]);
    }
}
