//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the *exact* API surface it consumes from `rand` 0.9: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, `rngs::StdRng`, `random`,
//! `random_range`, and `random_bool`. The generator is xoshiro256++ seeded
//! via splitmix64 — deterministic for a given seed, which is all the
//! workload generators and tests rely on (they never depend on matching
//! upstream `rand`'s stream).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, as in upstream `rand`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values that can be drawn uniformly from the generator's bit stream
/// (the `StandardUniform` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draw one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a uniform value can be drawn from (`Range` and `RangeInclusive`
/// over the integer and float types the workspace uses).
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::from_rng(rng) * (hi - lo)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (including unsized `R` behind `&mut R`).
pub trait Rng: RngCore {
    /// Uniform value of type `T` (the `StandardUniform` distribution).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform value in the given range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The workspace's standard deterministic generator: xoshiro256++.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn from_state(mut sm: u64) -> Self {
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng::from_state(seed)
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.random_range(5usize..=5);
            assert_eq!(w, 5);
            let f = r.random_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = r.random_range(-10i64..10);
            assert!((-10..10).contains(&i));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.0));
    }

    #[test]
    fn works_through_unsized_ref() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut r = StdRng::seed_from_u64(4);
        let dynrng: &mut StdRng = &mut r;
        let x = draw(dynrng);
        assert!((0.0..1.0).contains(&x));
    }
}
