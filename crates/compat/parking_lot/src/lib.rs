//! Offline stand-in for `parking_lot`: the non-poisoning `RwLock`/`Mutex`
//! API implemented over `std::sync`. Poisoned locks are recovered
//! transparently (parking_lot has no poisoning at all).

#![warn(missing_docs)]

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Reader-writer lock with parking_lot's non-poisoning `read`/`write`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Unwrap, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard (never errors).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard (never errors).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// Mutex with parking_lot's non-poisoning `lock`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (never errors).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }
}
