//! Offline stand-in for `criterion`.
//!
//! Provides the macro/API surface the workspace's benches use —
//! `criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `Bencher::iter` — backed by a simple wall-clock harness: a warm-up
//! pass, then timed batches until a target measurement window is filled,
//! reporting min/mean/median per benchmark. No statistical analysis or
//! HTML reports, but `cargo bench` output stays comparable run-to-run.

#![warn(missing_docs)]

use std::fmt;
use std::time::Duration;

pub use std::hint::black_box;

/// Measurement settings (a fixed-time harness).
#[derive(Debug, Clone)]
pub struct Criterion {
    measure_for: Duration,
    warm_up_iters: u32,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measure_for: Duration::from_millis(300),
            warm_up_iters: 2,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(self, name, None, f);
        self
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Throughput annotation (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Criterion-compatible no-op tuning knob (the shim harness is
    /// time-bounded rather than sample-count-bounded).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Annotate subsequent benchmarks with a throughput (printed only).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        match t {
            Throughput::Bytes(n) => eprintln!("   throughput unit: {n} bytes/iter"),
            Throughput::Elements(n) => eprintln!("   throughput unit: {n} elems/iter"),
        }
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(self.criterion, &label, self.sample_size, f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(self.criterion, &label, self.sample_size, |b| f(b, input));
        self
    }

    /// End the group (criterion-compatible; nothing to flush here).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; measures the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the harness-chosen iteration count. Wall-clock
    /// reads go through `swim_obs::timed` — the workspace's single
    /// clock entry point — so bench loops show up as `criterion.iter`
    /// spans when span recording is enabled.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let iters = self.iters;
        let ((), elapsed) = swim_obs::timed("criterion.iter", || {
            for _ in 0..iters {
                black_box(f());
            }
        });
        self.elapsed = elapsed;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    label: &str,
    sample_size: Option<usize>,
    mut f: F,
) {
    // Warm-up & calibration: run single iterations to estimate cost.
    let mut one = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let mut per_iter = Duration::ZERO;
    for _ in 0..criterion.warm_up_iters.max(1) {
        f(&mut one);
        per_iter = one.elapsed.max(Duration::from_nanos(1));
    }
    // Aim for enough samples to fill the measurement window, each sample
    // being one timed iteration batch.
    let window = criterion.measure_for;
    let max_samples = sample_size.unwrap_or(50) as u64;
    let samples =
        (window.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, max_samples as u128) as u64;
    let mut timings: Vec<Duration> = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        timings.push(b.elapsed / b.iters.max(1) as u32);
    }
    timings.sort_unstable();
    let min = timings[0];
    let median = timings[timings.len() / 2];
    let mean = timings.iter().sum::<Duration>() / timings.len() as u32;
    eprintln!(
        "{label:<48} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
        min,
        median,
        mean,
        timings.len()
    );
}

/// Group benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            measure_for: Duration::from_millis(5),
            warm_up_iters: 1,
        }
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut c = quick();
        let mut ran = 0u32;
        c.bench_function("counts", |b| {
            b.iter(|| ());
            ran += 1;
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_api_composes() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::from_parameter("p"), &7u32, |b, &x| {
            b.iter(|| x * 2);
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
