//! Offline stand-in for `crossbeam`: the scoped-thread API implemented
//! over `std::thread::scope` (which, since Rust 1.63, covers everything
//! the workspace needs from `crossbeam::thread`).

#![warn(missing_docs)]

/// Scoped threads in crossbeam's spelling.
pub mod thread {
    use std::thread as stdthread;

    /// Result alias matching `crossbeam::thread::scope`'s return type.
    pub type Result<T> = stdthread::Result<T>;

    /// A scope handle passed to `scope` and to every spawned closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread; the closure receives the scope so it can
        /// spawn further threads (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned.
    /// All spawned threads are joined before `scope` returns. Unlike
    /// crossbeam the error arm is unreachable (std re-panics child panics
    /// on implicit join), but the `Result` shape is preserved.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
