//! Offline stand-in for `serde_derive`.
//!
//! Emits impls of the workspace's Value-tree `serde` shim. Because the
//! registry (and therefore `syn`/`quote`) is unavailable, the type
//! definition is parsed directly from the raw `proc_macro::TokenStream`.
//! Supported shapes — exactly what the workspace uses:
//!
//! * structs with named fields (honoring `#[serde(default)]` and
//!   `#[serde(skip_serializing_if = "path")]`),
//! * tuple structs (single-field newtypes serialize transparently, as in
//!   serde; `#[serde(transparent)]` is accepted and implied),
//! * enums with unit, tuple, and struct variants (externally tagged).
//!
//! Generics are not supported and produce a compile-time panic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the shim's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let model = parse(input);
    gen_serialize(&model)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let model = parse(input);
    gen_deserialize(&model)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---- model ------------------------------------------------------------

struct Model {
    name: String,
    kind: Kind,
}

enum Kind {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    default: bool,
    skip_if: Option<String>,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

// ---- parsing ----------------------------------------------------------

struct SerdeAttrs {
    default: bool,
    skip_if: Option<String>,
}

/// Parse one `#[...]` attribute group's contents; returns serde metas if it
/// is a `serde(...)` attribute.
fn parse_attr_group(tokens: &[TokenTree]) -> Option<SerdeAttrs> {
    let mut attrs = SerdeAttrs {
        default: false,
        skip_if: None,
    };
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            g.stream().into_iter().collect::<Vec<_>>()
        }
        _ => return Some(attrs),
    };
    let mut i = 0;
    while i < inner.len() {
        match &inner[i] {
            TokenTree::Ident(id) => {
                let word = id.to_string();
                match word.as_str() {
                    "default" => attrs.default = true,
                    "transparent" => {} // implied for single-field tuple structs
                    "skip_serializing_if" => {
                        // skip_serializing_if = "Path::to::fn"
                        if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                            (inner.get(i + 1), inner.get(i + 2))
                        {
                            if eq.as_char() == '=' {
                                let raw = lit.to_string();
                                attrs.skip_if = Some(raw.trim_matches('"').to_string());
                                i += 2;
                            }
                        }
                    }
                    other => panic!("serde shim derive: unsupported serde attribute `{other}`"),
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!("serde shim derive: unexpected token {other} in serde attribute"),
        }
        i += 1;
    }
    Some(attrs)
}

/// Consume leading attributes at `*i`, merging any serde metas.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut merged = SerdeAttrs {
        default: false,
        skip_if: None,
    };
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    if g.delimiter() == Delimiter::Bracket {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        if let Some(found) = parse_attr_group(&inner) {
                            merged.default |= found.default;
                            if found.skip_if.is_some() {
                                merged.skip_if = found.skip_if;
                            }
                        }
                        *i += 2;
                        continue;
                    }
                }
                panic!("serde shim derive: stray `#`");
            }
            _ => break,
        }
    }
    merged
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Count comma-separated items at the top level of a token slice,
/// treating `<...>` angle sections as nested.
fn count_top_level_items(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut items = 1;
    let mut depth = 0i32;
    let mut saw_trailing_comma = false;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    items += 1;
                    saw_trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        saw_trailing_comma = false;
    }
    if saw_trailing_comma {
        items -= 1;
    }
    items
}

fn parse_named_fields(group: &[TokenTree]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < group.len() {
        let attrs = skip_attrs(group, &mut i);
        if i >= group.len() {
            break;
        }
        skip_vis(group, &mut i);
        let name = match &group[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected field name, got {other}"),
        };
        i += 1;
        match &group[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after field, got {other}"),
        }
        // Skip the type until a top-level comma.
        let mut depth = 0i32;
        while i < group.len() {
            if let TokenTree::Punct(p) = &group[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field {
            name,
            default: attrs.default,
            skip_if: attrs.skip_if,
        });
    }
    fields
}

fn parse_variants(group: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < group.len() {
        skip_attrs(group, &mut i);
        if i >= group.len() {
            break;
        }
        let name = match &group[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, got {other}"),
        };
        i += 1;
        let shape = match group.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::Tuple(count_top_level_items(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::Struct(parse_named_fields(&inner))
            }
            _ => Shape::Unit,
        };
        if let Some(TokenTree::Punct(p)) = group.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse(input: TokenStream) -> Model {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let is_enum = match &tokens[i] {
        TokenTree::Ident(id) => match id.to_string().as_str() {
            "struct" => false,
            "enum" => true,
            other => panic!("serde shim derive: expected struct/enum, got `{other}`"),
        },
        other => panic!("serde shim derive: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` is not supported");
        }
    }
    let kind = if is_enum {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Kind::Enum(parse_variants(&inner))
            }
            _ => panic!("serde shim derive: malformed enum `{name}`"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Kind::Named(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Kind::Tuple(count_top_level_items(&inner))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Unit,
            _ => panic!("serde shim derive: malformed struct `{name}`"),
        }
    };
    Model { name, kind }
}

// ---- codegen ----------------------------------------------------------

fn gen_serialize(model: &Model) -> String {
    let name = &model.name;
    let body = match &model.kind {
        Kind::Named(fields) => {
            let mut b = String::from(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields {
                let n = &f.name;
                let push = format!(
                    "__fields.push((::std::string::String::from(\"{n}\"), \
                     ::serde::Serialize::to_value(&self.{n})));"
                );
                if let Some(skip) = &f.skip_if {
                    b.push_str(&format!("if !({skip}(&self.{n})) {{ {push} }}\n"));
                } else {
                    b.push_str(&push);
                    b.push('\n');
                }
            }
            b.push_str("::serde::Value::Object(__fields)");
            b
        }
        Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Kind::Unit => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from(\"{vn}\"), \
                         ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Array(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), \
                                     ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Object(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_named_constructor(ty: &str, path: &str, fields: &[Field], obj_expr: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        let n = &f.name;
        let on_missing = if f.default || f.skip_if.is_some() {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::DeError::missing(\"{n}\", \"{ty}\"))"
            )
        };
        inits.push_str(&format!(
            "{n}: match ::serde::obj_get({obj_expr}, \"{n}\") {{\n\
             ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
             ::std::option::Option::None => {on_missing},\n}},\n"
        ));
    }
    format!("{path} {{\n{inits}}}")
}

fn gen_deserialize(model: &Model) -> String {
    let name = &model.name;
    let body = match &model.kind {
        Kind::Named(fields) => {
            let ctor = gen_named_constructor(name, name, fields, "__obj");
            format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({ctor})"
            )
        }
        Kind::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = __v.as_array().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected array for {name}\"))?;\n\
                 if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError::custom(\"wrong tuple arity for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::Unit => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Shape::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(__val)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __arr = __val.as_array().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected array for {name}::{vn}\"))?;\n\
                             if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::DeError::custom(\"wrong arity for {name}::{vn}\")); }}\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n}},\n",
                            items.join(", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        let ctor =
                            gen_named_constructor(name, &format!("{name}::{vn}"), fields, "__vobj");
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __vobj = __val.as_object().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected object for {name}::{vn}\"))?;\n\
                             ::std::result::Result::Ok({ctor})\n}},\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n}},\n\
                 ::serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                 let (__k, __val) = &__o[0];\n\
                 let _ = __val;\n\
                 match __k.as_str() {{\n{data_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::DeError::custom(\
                 \"unexpected value shape for enum {name}\")),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
