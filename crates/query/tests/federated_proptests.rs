//! Property tests for federated catalog execution: for random job sets
//! split arbitrarily across 1..=8 shards, `catalog.execute` (parallel),
//! `catalog.execute_serial`, and a single-store query over the
//! concatenated trace must agree bit for bit — rows, columns, and (for
//! the two catalog paths) stats included.

use proptest::prelude::*;
use swim_catalog::{Catalog, CatalogOptions};
use swim_query::{execute_serial, Aggregate, CatalogQuery, CmpOp, Col, Expr, Pred, Query};
use swim_store::{store_to_vec, Store, StoreOptions};
use swim_trace::trace::WorkloadKind;
use swim_trace::{DataSize, Dur, Job, JobBuilder, Timestamp, Trace};

fn arb_job(id: u64) -> impl Strategy<Value = Job> {
    (
        0u64..50_000,   // submit
        1u64..10_000,   // duration
        0u64..u64::MAX, // input (full range: saturation must agree too)
        0u64..1 << 40,  // output
        1u32..50,       // map tasks
        0u32..5,        // reduce tasks
    )
        .prop_map(move |(s, d, i, o, mt, rt)| {
            let mut b = JobBuilder::new(id)
                .submit(Timestamp::from_secs(s))
                .duration(Dur::from_secs(d))
                .input(DataSize::from_bytes(i))
                .output(DataSize::from_bytes(o))
                .map_task_time(Dur::from_secs(1 + d % 900))
                .tasks(mt, rt);
            if rt > 0 {
                b = b
                    .shuffle(DataSize::from_bytes(i / 3))
                    .reduce_task_time(Dur::from_secs(1 + d % 70));
            }
            b.build().expect("constructed consistently")
        })
}

/// Jobs plus, per job, the shard (0..n_shards) it is assigned to — an
/// arbitrary partition, so shard submit windows overlap freely.
fn arb_jobs_and_split() -> impl Strategy<Value = (Vec<Job>, Vec<u8>, u8)> {
    (1u8..=8).prop_flat_map(|n_shards| {
        prop::collection::vec(0u8..n_shards, 0..120).prop_flat_map(move |assignment| {
            let jobs: Vec<_> = (0..assignment.len() as u64).map(arb_job).collect();
            jobs.prop_map(move |jobs| (jobs, assignment.clone(), n_shards))
        })
    })
}

fn pick_pred(kind: u8, threshold: u64) -> Pred {
    match kind % 8 {
        0 => Pred::True,
        1 => Pred::cmp(Col::Duration, CmpOp::Lt, 1), // always false
        2 => Pred::cmp(Col::Submit, CmpOp::Lt, threshold % 50_000),
        3 => Pred::cmp(Col::Input, CmpOp::Ge, threshold.rotate_left(31)),
        4 => Pred::Cmp(Expr::total_io(), CmpOp::Gt, Expr::Lit(threshold)),
        5 => Pred::cmp(Col::Duration, CmpOp::Ge, threshold % 10_000).and(Pred::cmp(
            Col::Submit,
            CmpOp::Lt,
            threshold % 60_000,
        )),
        6 => Pred::submit_range(threshold % 25_000, 25_000 + threshold % 25_000),
        _ => Pred::Cmp(Expr::col(Col::Input), CmpOp::Ge, Expr::col(Col::Submit)),
    }
}

fn pick_group(kind: u8) -> Vec<Expr> {
    match kind % 3 {
        0 => vec![],
        1 => vec![Expr::submit_hour()],
        _ => vec![Expr::col(Col::ReduceTasks)],
    }
}

fn aggregates() -> Vec<Aggregate> {
    vec![
        Aggregate::Count,
        Aggregate::Sum(Expr::total_io()),
        Aggregate::Min(Expr::col(Col::Duration)),
        Aggregate::Max(Expr::col(Col::Input)),
        Aggregate::Avg(Expr::col(Col::Duration)),
        Aggregate::Percentile(Expr::col(Col::Duration), 0.5),
    ]
}

fn temp_dir() -> std::path::PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("swim-fed-prop-{}-{n}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn catalog_execution_matches_single_store_bit_for_bit(
        (jobs, assignment, n_shards) in arb_jobs_and_split(),
        jobs_per_chunk in 1u32..24,
        pred_kind in any::<u8>(),
        threshold in any::<u64>(),
        group_kind in any::<u8>(),
    ) {
        let dir = temp_dir();
        let _ = std::fs::remove_dir_all(&dir);
        let mut catalog = Catalog::init(&dir).expect("init");
        let options = CatalogOptions {
            jobs_per_shard: 1 << 16, // one shard per ingest
            store: StoreOptions { jobs_per_chunk },
        };
        for shard in 0..n_shards {
            let shard_jobs: Vec<Job> = jobs
                .iter()
                .zip(&assignment)
                .filter(|(_, &a)| a == shard)
                .map(|(j, _)| j.clone())
                .collect();
            if shard_jobs.is_empty() {
                continue; // empty slices add no shard
            }
            let trace = Trace::new(WorkloadKind::Custom("prop".into()), 3, shard_jobs)
                .expect("unique ids");
            catalog.ingest_trace(&trace, &options).expect("ingest");
        }

        let trace = Trace::new(WorkloadKind::Custom("prop".into()), 3, jobs)
            .expect("unique ids");
        let store = Store::from_vec(store_to_vec(&trace, &StoreOptions { jobs_per_chunk }))
            .expect("fresh store opens");

        let mut query = Query::new().filter(pick_pred(pred_kind, threshold));
        for key in pick_group(group_kind) {
            query = query.group(key);
        }
        for agg in aggregates() {
            query = query.select(agg);
        }

        let single = execute_serial(&store, &query).expect("single-store executes");
        let serial = catalog.execute_serial(&query).expect("federated serial executes");
        // Rows and columns are bit-identical to a single store over the
        // concatenated trace (stats differ by construction: chunking and
        // shard pruning are different physical plans).
        prop_assert_eq!(&serial.output.columns, &single.columns);
        prop_assert_eq!(&serial.output.rows, &single.rows);
        // Parallel federated execution is bit-identical, stats included —
        // and again with the decoded-column cache warm.
        for _ in 0..2 {
            let parallel = catalog.execute(&query).expect("federated parallel executes");
            prop_assert_eq!(&parallel, &serial);
        }
        // Shard accounting balances.
        prop_assert_eq!(
            serial.shards_scanned + serial.shards_pruned,
            serial.shards_total
        );
        prop_assert_eq!(serial.shards_total, catalog.shard_count());
        // Nothing the predicate matches may hide in a pruned shard.
        prop_assert_eq!(serial.output.stats.rows_matched, single.stats.rows_matched);

        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
