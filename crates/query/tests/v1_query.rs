//! Queries over a version-1 store file (no zone-map section) must return
//! exactly what the same queries return over a v2 re-encoding of the same
//! trace — v1 just prunes less (submit-window only, via the synthesized
//! permissive zone maps).

use std::path::PathBuf;
use swim_query::{execute, execute_serial, parse, Query};
use swim_store::{store_to_vec, Store, StoreOptions};

fn fixture(name: &str) -> Store {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../store/tests/fixtures")
        .join(name);
    Store::open(path).expect("checked-in v1 fixture opens")
}

/// The original single-chunk v1 artifact.
fn v1_store() -> Store {
    fixture("v1-sample.swim")
}

/// The same jobs in a 64-jobs-per-chunk v1 file (8 chunks), so v1
/// submit-window pruning has something to prune.
fn v1_multichunk() -> Store {
    fixture("v1-multichunk.swim")
}

fn queries() -> Vec<Query> {
    let build = |select: &str, where_: &str, group: &str| {
        let mut q = Query::new().filter(parse::parse_predicate(where_).unwrap());
        for key in parse::parse_group_by(group).unwrap() {
            q = q.group(key);
        }
        for agg in parse::parse_aggregates(select).unwrap() {
            q = q.select(agg);
        }
        q
    };
    vec![
        build("count,sum(total_io),min(submit),max(submit)", "", ""),
        build("count,sum(input)", "submit < 1d", "submit/3600"),
        build(
            "count,p50(duration),avg(total_task_time)",
            "input > 10mb",
            "reduce_tasks",
        ),
    ]
}

#[test]
fn v1_files_query_correctly() {
    let v1 = v1_store();
    assert_eq!(v1.format_version(), 1);
    let trace = v1.read_trace().expect("fixture decodes");
    let v2 = Store::from_vec(store_to_vec(&trace, &StoreOptions::default())).unwrap();
    assert_eq!(v2.format_version(), swim_store::format::VERSION);

    for q in queries() {
        let a = execute(&v1, &q).expect("v1 executes");
        let b = execute(&v2, &q).expect("v2 executes");
        // Same rows and labels; pruning stats legitimately differ (the
        // fixture and the re-encode also chunk differently), so compare
        // the result surface, not the counters.
        assert_eq!(a.columns, b.columns);
        assert_eq!(a.rows, b.rows);
        // And each version is internally deterministic.
        assert_eq!(execute_serial(&v1, &q).expect("serial"), a);
        assert_eq!(execute_serial(&v2, &q).expect("serial"), b);
    }
}

#[test]
fn v1_prunes_on_submit_but_never_on_other_columns() {
    let v1 = v1_multichunk();
    assert_eq!(v1.format_version(), 1);
    assert!(v1.chunk_count() > 1, "fixture must be multi-chunk");
    // Submit predicates can skip chunks on v1 (the old index carried
    // submit windows) …
    let submit_q = Query::new()
        .filter(parse::parse_predicate("submit < 2h").unwrap())
        .select(parse::parse_aggregates("count").unwrap().remove(0));
    let out = execute(&v1, &submit_q).unwrap();
    assert!(
        out.stats.chunks_skipped > 0,
        "v1 submit pruning regressed: {:?}",
        out.stats
    );

    // … but non-submit predicates cannot skip anything on v1: the
    // synthesized maps are full-range, so every chunk stays Maybe.
    let input_q = Query::new()
        .filter(parse::parse_predicate("input > 100tb").unwrap())
        .select(parse::parse_aggregates("count").unwrap().remove(0));
    let out = execute(&v1, &input_q).unwrap();
    assert_eq!(out.stats.chunks_skipped, 0);
    assert_eq!(out.stats.chunks_scanned, v1.chunk_count());

    // The same impossible predicate on a v2 re-encode skips everything.
    let trace = v1.read_trace().unwrap();
    let v2 = Store::from_vec(store_to_vec(&trace, &StoreOptions::default())).unwrap();
    let out = execute(&v2, &input_q).unwrap();
    assert_eq!(out.stats.chunks_scanned, 0);
}
