//! Property tests: swim-query over random traces must agree with a naive
//! in-memory oracle that filters, groups, and aggregates a `Vec<Job>`
//! directly — including the empty-result and all-match predicate edges —
//! and parallel execution must be bit-identical to serial.

use proptest::prelude::*;
use std::collections::BTreeMap;
use swim_query::{execute, execute_serial, AggValue, Aggregate, CmpOp, Col, Expr, Pred, Query};
use swim_store::format::columns::NumericColumns;
use swim_store::{store_to_vec, Store, StoreOptions};
use swim_trace::trace::WorkloadKind;
use swim_trace::{DataSize, Dur, Job, JobBuilder, Timestamp, Trace};

fn arb_job(id: u64) -> impl Strategy<Value = Job> {
    (
        0u64..50_000,   // submit
        1u64..10_000,   // duration
        0u64..u64::MAX, // input (full range: saturation must agree too)
        0u64..1 << 40,  // output
        1u32..50,       // map tasks
        0u32..5,        // reduce tasks
    )
        .prop_map(move |(s, d, i, o, mt, rt)| {
            let mut b = JobBuilder::new(id)
                .submit(Timestamp::from_secs(s))
                .duration(Dur::from_secs(d))
                .input(DataSize::from_bytes(i))
                .output(DataSize::from_bytes(o))
                .map_task_time(Dur::from_secs(1 + d % 900))
                .tasks(mt, rt);
            if rt > 0 {
                b = b
                    .shuffle(DataSize::from_bytes(i / 3))
                    .reduce_task_time(Dur::from_secs(1 + d % 70));
            }
            b.build().expect("constructed consistently")
        })
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec(any::<u8>(), 0..150).prop_flat_map(|seeds| {
        let jobs: Vec<_> = seeds
            .iter()
            .enumerate()
            .map(|(i, _)| arb_job(i as u64))
            .collect();
        jobs.prop_map(|jobs| {
            Trace::new(WorkloadKind::Custom("prop".into()), 3, jobs).expect("valid jobs")
        })
    })
}

/// A predicate family indexed by small integers, spanning every operator,
/// derived expressions, boolean combinators, and the two degenerate
/// cases (always-false, always-true).
fn pick_pred(kind: u8, threshold: u64) -> Pred {
    let ops = [
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
        CmpOp::Eq,
        CmpOp::Ne,
    ];
    match kind % 10 {
        0 => Pred::True,
        // Always-false: durations start at 1 second.
        1 => Pred::cmp(Col::Duration, CmpOp::Lt, 1),
        2 => Pred::cmp(Col::Submit, ops[threshold as usize % 6], threshold % 50_000),
        3 => Pred::cmp(Col::Input, CmpOp::Ge, threshold.rotate_left(31)),
        4 => Pred::Cmp(Expr::total_io(), CmpOp::Gt, Expr::Lit(threshold)),
        5 => Pred::cmp(Col::ReduceTasks, CmpOp::Eq, threshold % 5),
        6 => Pred::cmp(Col::Duration, CmpOp::Ge, threshold % 10_000).and(Pred::cmp(
            Col::Submit,
            CmpOp::Lt,
            threshold % 60_000,
        )),
        7 => Pred::cmp(Col::Input, CmpOp::Lt, threshold).or(Pred::cmp(
            Col::MapTasks,
            CmpOp::Gt,
            threshold % 50,
        )),
        8 => Pred::Not(Box::new(Pred::cmp(
            Col::Submit,
            CmpOp::Ge,
            threshold % 50_000,
        ))),
        _ => Pred::Cmp(
            // Derived arithmetic on both sides.
            Expr::Div(
                Box::new(Expr::col(Col::Input)),
                Box::new(Expr::lit(1 + threshold % 1000)),
            ),
            CmpOp::Le,
            Expr::Mul(
                Box::new(Expr::col(Col::Duration)),
                Box::new(Expr::lit(threshold % 9)),
            ),
        ),
    }
}

fn pick_group(kind: u8) -> Vec<Expr> {
    match kind % 4 {
        0 => vec![],
        1 => vec![Expr::submit_hour()],
        2 => vec![Expr::col(Col::ReduceTasks)],
        _ => vec![
            Expr::col(Col::ReduceTasks),
            Expr::Div(
                Box::new(Expr::col(Col::Submit)),
                Box::new(Expr::lit(10_000)),
            ),
        ],
    }
}

fn aggregates() -> Vec<Aggregate> {
    vec![
        Aggregate::Count,
        Aggregate::Sum(Expr::total_io()),
        Aggregate::Min(Expr::col(Col::Duration)),
        Aggregate::Max(Expr::col(Col::Input)),
        Aggregate::Avg(Expr::col(Col::Duration)),
        Aggregate::Percentile(Expr::col(Col::Duration), 0.5),
    ]
}

/// One job as a single-row column chunk, so oracle expression evaluation
/// shares the engine's `eval_row` arithmetic definitions exactly.
fn row_of(job: &Job) -> NumericColumns {
    NumericColumns {
        ids: vec![job.id.0],
        submits: vec![job.submit.secs()],
        durations: vec![job.duration.secs()],
        inputs: vec![job.input.bytes()],
        shuffles: vec![job.shuffle.bytes()],
        outputs: vec![job.output.bytes()],
        map_times: vec![job.map_task_time.secs()],
        reduce_times: vec![job.reduce_task_time.secs()],
        map_tasks: vec![u64::from(job.map_tasks)],
        reduce_tasks: vec![u64::from(job.reduce_tasks)],
    }
}

/// The naive oracle: filter/group/aggregate straight over `Vec<Job>`,
/// with independent aggregate implementations.
fn oracle(trace: &Trace, query: &Query) -> Vec<(Vec<u64>, Vec<AggValue>)> {
    let mut groups: BTreeMap<Vec<u64>, Vec<Vec<u64>>> = BTreeMap::new();
    for job in trace.jobs() {
        let row = row_of(job);
        if !query.predicate.eval_row(&row, 0) {
            continue;
        }
        let key: Vec<u64> = query.group_by.iter().map(|e| e.eval_row(&row, 0)).collect();
        let values: Vec<u64> = query
            .aggregates
            .iter()
            .map(|a| a.input().map_or(0, |e| e.eval_row(&row, 0)))
            .collect();
        groups.entry(key).or_default().push(values);
    }
    if groups.is_empty() && query.group_by.is_empty() {
        groups.insert(Vec::new(), Vec::new());
    }
    groups
        .into_iter()
        .map(|(key, rows)| {
            let values = query
                .aggregates
                .iter()
                .enumerate()
                .map(|(i, agg)| {
                    let col: Vec<u64> = rows.iter().map(|r| r[i]).collect();
                    match agg {
                        Aggregate::Count => AggValue::Int(col.len() as u64),
                        Aggregate::Sum(_) => {
                            AggValue::Int(col.iter().fold(0u64, |a, &v| a.saturating_add(v)))
                        }
                        Aggregate::Min(_) => col
                            .iter()
                            .min()
                            .map_or(AggValue::Null, |&v| AggValue::Int(v)),
                        Aggregate::Max(_) => col
                            .iter()
                            .max()
                            .map_or(AggValue::Null, |&v| AggValue::Int(v)),
                        Aggregate::Avg(_) => {
                            if col.is_empty() {
                                AggValue::Null
                            } else {
                                let sum = col.iter().fold(0u64, |a, &v| a.saturating_add(v));
                                AggValue::Float(sum as f64 / col.len() as f64)
                            }
                        }
                        Aggregate::Percentile(_, p) => {
                            if col.is_empty() {
                                AggValue::Null
                            } else {
                                let mut sorted = col.clone();
                                sorted.sort_unstable();
                                let rank = ((p * sorted.len() as f64).ceil() as usize)
                                    .clamp(1, sorted.len());
                                AggValue::Float(sorted[rank - 1] as f64)
                            }
                        }
                    }
                })
                .collect();
            (key, values)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn query_engine_agrees_with_in_memory_oracle(
        trace in arb_trace(),
        jobs_per_chunk in 1u32..40,
        pred_kind in any::<u8>(),
        threshold in any::<u64>(),
        group_kind in any::<u8>(),
    ) {
        let store = Store::from_vec(store_to_vec(&trace, &StoreOptions { jobs_per_chunk }));
        let store = store.expect("fresh store opens");
        let mut query = Query::new().filter(pick_pred(pred_kind, threshold));
        for key in pick_group(group_kind) {
            query = query.group(key);
        }
        for agg in aggregates() {
            query = query.select(agg);
        }

        let serial = execute_serial(&store, &query).expect("serial executes");
        // Engine rows arrive key-sorted; the oracle's BTreeMap matches.
        let got: Vec<(Vec<u64>, Vec<AggValue>)> = serial
            .rows
            .iter()
            .map(|r| (r.key.clone(), r.values.clone()))
            .collect();
        let expected = oracle(&trace, &query);
        prop_assert!(
            got == expected,
            "pred_kind={} threshold={} group_kind={} pred={} stats={:?}\n got: {:?}\n expected: {:?}",
            pred_kind, threshold, group_kind, query.predicate, serial.stats, got, expected
        );

        // Parallel execution is bit-identical, stats included.
        let parallel = execute(&store, &query).expect("parallel executes");
        prop_assert_eq!(&parallel, &serial);

        // Pruning accounting always balances.
        let s = serial.stats;
        prop_assert_eq!(s.chunks_scanned + s.chunks_skipped, s.chunks_total);
        prop_assert!(s.rows_matched <= s.rows_scanned);
        // Nothing the predicate matches may live in a skipped chunk:
        // total matches equal the oracle's row count.
        let oracle_rows: u64 = trace
            .jobs()
            .iter()
            .filter(|j| query.predicate.eval_row(&row_of(j), 0))
            .count() as u64;
        prop_assert_eq!(s.rows_matched, oracle_rows);
    }

    #[test]
    fn degenerate_predicates_hit_both_edges(
        trace in arb_trace(),
        jobs_per_chunk in 1u32..40,
    ) {
        let store = Store::from_vec(store_to_vec(&trace, &StoreOptions { jobs_per_chunk }))
            .expect("fresh store opens");
        let base = || {
            let mut q = Query::new();
            for agg in aggregates() {
                q = q.select(agg);
            }
            q
        };

        // All-match: every chunk is a full zone match, no filtering.
        let all = execute_serial(&store, &base()).expect("executes");
        prop_assert_eq!(all.stats.rows_matched, trace.len() as u64);
        prop_assert_eq!(all.stats.chunks_full_match, all.stats.chunks_scanned);
        prop_assert_eq!(
            &oracle(&trace, &base()),
            &all.rows.iter().map(|r| (r.key.clone(), r.values.clone())).collect::<Vec<_>>()
        );

        // Empty-match: zone maps prove it without reading any chunk.
        let none = base().filter(Pred::cmp(Col::Duration, CmpOp::Lt, 1));
        let out = execute_serial(&store, &none).expect("executes");
        prop_assert_eq!(out.stats.chunks_scanned, 0);
        prop_assert_eq!(out.stats.rows_matched, 0);
        prop_assert_eq!(out.rows.len(), 1); // the SQL-style global zero row
        prop_assert_eq!(out.rows[0].values[0], AggValue::Int(0));
        prop_assert_eq!(&oracle(&trace, &none),
            &out.rows.iter().map(|r| (r.key.clone(), r.values.clone())).collect::<Vec<_>>());
    }
}
