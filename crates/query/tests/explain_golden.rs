//! Golden pins for `swim-query --explain` over the two frozen fixtures
//! (`crates/store/tests/fixtures/v1-multichunk.swim`, format v1, and
//! `testdata/sample-b.swim`, format v2), plus the acceptance
//! cross-check: the chunk verdict counts `--explain` *predicts* must
//! equal the decode counters `--profile` *observes* for the same query.
//!
//! Regenerate after an intentional output change with
//!
//! ```sh
//! SWIM_REGEN_GOLDEN=1 cargo test -p swim-query --test explain_golden
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

/// The workspace root: fixture paths are passed relative to it so the
/// golden output (which echoes the path) is machine-independent.
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

const V1_FIXTURE: &str = "crates/store/tests/fixtures/v1-multichunk.swim";
const V2_FIXTURE: &str = "testdata/sample-b.swim";
const QUERY_ARGS: &[&str] = &[
    "--select",
    "count,sum(total_io),p50(duration)",
    "--where",
    "submit < 12h",
    "--group-by",
    "submit/3600",
];

/// Run `swim-query` from the workspace root, returning stdout.
fn swim_query(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_swim-query"))
        .current_dir(repo_root())
        .env_remove("SWIM_OBS")
        .env_remove("SWIM_OBS_JSONL")
        .args(args)
        .output()
        .expect("swim-query runs");
    assert!(
        out.status.success(),
        "swim-query {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

fn check_golden(name: &str, got: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("SWIM_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        got,
        golden,
        "--explain output drifted from {} (SWIM_REGEN_GOLDEN=1 to regenerate)",
        path.display()
    );
}

/// Pull `key: value` out of the `--profile` counter block.
fn profile_counter(profile_stdout: &str, name: &str) -> u64 {
    profile_stdout
        .lines()
        .find_map(|line| {
            let (key, value) = line.split_once(':')?;
            (key.trim() == name).then(|| value.trim().parse().expect("counter is a u64"))
        })
        .unwrap_or_else(|| panic!("counter {name} not in profile output:\n{profile_stdout}"))
}

/// Pull a field out of the fixed-shape `--format json` explain object's
/// `"chunks"` summary.
fn explain_chunk_field(explain_json: &str, field: &str) -> u64 {
    let chunks = explain_json
        .rsplit("\"chunks\":")
        .next()
        .expect("chunks object");
    let tagged = format!("\"{field}\":");
    let rest = &chunks[chunks.find(&tagged).expect("field present") + tagged.len()..];
    rest.split(|c: char| !c.is_ascii_digit())
        .next()
        .and_then(|n| n.parse().ok())
        .expect("field is a u64")
}

#[test]
fn explain_v1_fixture_matches_golden() {
    let mut args = vec!["--trace", V1_FIXTURE];
    args.extend_from_slice(QUERY_ARGS);
    args.push("--explain");
    check_golden("explain-v1.txt", &swim_query(&args));

    args.extend_from_slice(&["--format", "json"]);
    check_golden("explain-v1.json", &swim_query(&args));
}

#[test]
fn explain_v2_fixture_matches_golden() {
    let mut args = vec!["--trace", V2_FIXTURE];
    args.extend_from_slice(QUERY_ARGS);
    args.push("--explain");
    check_golden("explain-v2.txt", &swim_query(&args));
}

/// The acceptance invariant: for the same query, the chunks `--explain`
/// says execution *would* decode (`always + maybe`) are exactly the
/// chunks `--profile` counts as decoded (`store.chunks_decoded`), and
/// the per-verdict planner counters agree with the explain split.
#[test]
fn explain_verdicts_match_profile_decode_counters() {
    for fixture in [V1_FIXTURE, V2_FIXTURE] {
        let mut explain_args = vec!["--trace", fixture];
        explain_args.extend_from_slice(QUERY_ARGS);
        explain_args.extend_from_slice(&["--explain", "--format", "json"]);
        let explain = swim_query(&explain_args);

        let mut profile_args = vec!["--trace", fixture];
        profile_args.extend_from_slice(QUERY_ARGS);
        profile_args.extend_from_slice(&["--profile", "--serial"]);
        let profile = swim_query(&profile_args);

        for (explain_field, counter) in [
            ("scanned", "store.chunks_decoded"),
            ("never", "query.verdict_never"),
            ("always", "query.verdict_always"),
            ("maybe", "query.verdict_maybe"),
        ] {
            assert_eq!(
                explain_chunk_field(&explain, explain_field),
                profile_counter(&profile, counter),
                "{fixture}: explain {explain_field} vs profile {counter}"
            );
        }
    }
}

/// `--explain` must refuse to also `--profile` (it never executes).
#[test]
fn explain_and_profile_are_mutually_exclusive() {
    let out = Command::new(env!("CARGO_BIN_EXE_swim-query"))
        .current_dir(repo_root())
        .args(["--trace", V1_FIXTURE, "--explain", "--profile"])
        .output()
        .expect("swim-query runs");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"),
        "unexpected stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
