//! Golden-pinned `swim-query` CLI error behaviour: usage errors
//! (malformed command line or unparsable query) exit 2, runtime errors
//! (missing or corrupt inputs) exit 1, every error prints a specific
//! `error: …` first line on stderr, and stdout stays empty. The exact
//! messages and codes are pinned so error UX changes are deliberate,
//! not accidental.

use std::process::Command;

fn fixture() -> String {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../store/tests/fixtures/v1-multichunk.swim"
    )
    .to_owned()
}

/// Run the binary; return (exit code, stdout, first stderr line).
fn run(args: &[&str]) -> (i32, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_swim-query"))
        .args(args)
        .output()
        .expect("swim-query binary runs");
    let stderr = String::from_utf8_lossy(&output.stderr);
    (
        output.status.code().expect("exit code"),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        stderr.lines().next().unwrap_or_default().to_owned(),
    )
}

#[test]
fn bad_unit_suffix_is_rejected_with_the_suffix_named() {
    let trace = fixture();
    let (code, stdout, first) = run(&["--trace", &trace, "--where", "input > 5zb"]);
    assert_eq!(code, 2);
    assert!(stdout.is_empty(), "errors must not print results: {stdout}");
    assert_eq!(
        first,
        "error: unknown unit suffix \"zb\" in \"input > 5zb\""
    );
}

#[test]
fn unknown_column_is_rejected_with_the_column_named() {
    let trace = fixture();
    let (code, stdout, first) = run(&["--trace", &trace, "--where", "frobnicate > 5"]);
    assert_eq!(code, 2);
    assert!(stdout.is_empty());
    assert_eq!(
        first,
        "error: unknown column `frobnicate` (see --help for columns)"
    );
}

#[test]
fn dangling_operator_is_rejected_at_end_of_input() {
    let trace = fixture();
    let (code, stdout, first) = run(&["--trace", &trace, "--where", "input >"]);
    assert_eq!(code, 2);
    assert!(stdout.is_empty());
    assert_eq!(first, "error: expected an expression at end of input");
}

#[test]
fn unknown_aggregate_lists_the_valid_ones() {
    let trace = fixture();
    let (code, stdout, first) = run(&["--trace", &trace, "--select", "p101(duration)"]);
    assert_eq!(code, 2);
    assert!(stdout.is_empty());
    assert_eq!(
        first,
        "error: unknown aggregate `p101` (count, sum, min, max, avg, p0\u{2013}p100)"
    );
}

#[test]
fn single_equals_points_at_double_equals() {
    let trace = fixture();
    let (code, _, first) = run(&["--trace", &trace, "--where", "input = 5"]);
    assert_eq!(code, 2);
    assert_eq!(first, "error: use `==` for equality");
}

#[test]
fn unknown_flag_and_missing_inputs_are_usage_errors() {
    let (code, _, first) = run(&["--frobnicate"]);
    assert_eq!(code, 2);
    assert_eq!(first, "error: unknown flag --frobnicate");

    let (code, _, first) = run(&[]);
    assert_eq!(code, 2);
    assert_eq!(
        first,
        "error: a store file or catalog directory is required \
         (swim-query --trace x.swim | --catalog dir)"
    );

    let trace = fixture();
    let (code, _, first) = run(&["--trace", &trace, "--catalog", "some-dir"]);
    assert_eq!(code, 2);
    assert_eq!(first, "error: --trace and --catalog are mutually exclusive");
}

#[test]
fn zero_order_by_column_is_rejected() {
    let trace = fixture();
    let (code, _, first) = run(&["--trace", &trace, "--order-by", "0"]);
    assert_eq!(code, 2);
    assert_eq!(first, "error: --order-by columns are 1-based");
}

#[test]
fn help_exits_zero_with_usage_on_stdout() {
    let (code, stdout, _) = run(&["--help"]);
    assert_eq!(code, 0);
    assert!(stdout.starts_with("usage: swim-query"), "{stdout}");
}

#[test]
fn missing_store_file_errors_with_the_path() {
    let (code, _, first) = run(&["--trace", "/no/such/file.swim", "--select", "count"]);
    assert_eq!(code, 1);
    assert!(first.contains("/no/such/file.swim"), "{first}");
    assert!(
        first.starts_with("error: open /no/such/file.swim:"),
        "{first}"
    );
}
