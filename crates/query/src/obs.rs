//! swim-obs instruments for the query layer. Counter names are part of
//! the observable surface (`swim-query --profile`, the JSONL sink), so
//! treat them as API.
//!
//! The planner verdict counters are the profile-side half of the
//! `--explain` acceptance check: for one profiled query,
//! `query.verdict_always + query.verdict_maybe` equals the number of
//! planned chunks, which equals `store.chunks_decoded`.

use swim_obs::Counter;

/// Chunks the planner proved can contain no matching row (never read).
pub(crate) static VERDICT_NEVER: Counter = Counter::new("query.verdict_never");
/// Chunks the planner proved match entirely (read, row filter skipped).
pub(crate) static VERDICT_ALWAYS: Counter = Counter::new("query.verdict_always");
/// Chunks the planner could not decide (read and row-filtered).
pub(crate) static VERDICT_MAYBE: Counter = Counter::new("query.verdict_maybe");
/// Rows decoded across scanned chunks.
pub(crate) static ROWS_SCANNED: Counter = Counter::new("query.rows_scanned");
/// Rows that passed the predicate.
pub(crate) static ROWS_MATCHED: Counter = Counter::new("query.rows_matched");
/// Rows the predicate rejected (`rows_scanned - rows_matched`).
pub(crate) static ROWS_FILTERED: Counter = Counter::new("query.rows_filtered");
/// Chunk indices claimed by parallel workers off the shared cursor
/// (stays zero on the serial path).
pub(crate) static CHUNK_CLAIMS: Counter = Counter::new("query.chunk_claims");
/// Shards a federated query's manifest zone maps eliminated.
pub(crate) static SHARDS_PRUNED: Counter = Counter::new("catalog.shards_pruned");
/// Shards a federated query actually opened and scanned.
pub(crate) static SHARDS_SCANNED: Counter = Counter::new("catalog.shards_scanned");

/// Record an executed query's row totals (shared by the store-level and
/// federated executors).
pub(crate) fn record_rows(rows_scanned: u64, rows_matched: u64) {
    ROWS_SCANNED.add(rows_scanned);
    ROWS_MATCHED.add(rows_matched);
    ROWS_FILTERED.add(rows_scanned.saturating_sub(rows_matched));
}
