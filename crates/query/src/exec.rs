//! Query execution: vectorized per-chunk evaluation, mergeable group
//! tables, deterministic finalization.
//!
//! Both entry points — [`execute`] (parallel, worker-claimed chunk
//! indices via [`Store::par_fold_columns`]) and [`execute_serial`] — run
//! the *same* per-chunk fold and the *same* finalization, and every
//! accumulator merge is exact and order-insensitive, so the two produce
//! bit-identical [`QueryOutput`]s (pinned by tests and proptests).

use crate::agg::{AggState, AggValue};
use crate::plan::{plan, Query};
use crate::QueryError;
use std::collections::HashMap;
use swim_store::format::columns::NumericColumns;
use swim_store::Store;

/// What execution did, beyond the result rows: the observability side of
/// zone-map pruning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Chunks in the store.
    pub chunks_total: usize,
    /// Chunks actually read and decoded.
    pub chunks_scanned: usize,
    /// Chunks the planner skipped via zone maps (never read).
    pub chunks_skipped: usize,
    /// Scanned chunks whose zone verdict was "every row matches" (the
    /// row filter was skipped for them).
    pub chunks_full_match: usize,
    /// Rows decoded across scanned chunks.
    pub rows_scanned: u64,
    /// Rows that passed the predicate.
    pub rows_matched: u64,
}

/// One output row: the group key plus one value per aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Group-key values, in `group_by` order (empty for global queries).
    pub key: Vec<u64>,
    /// Aggregate values, in `aggregates` order.
    pub values: Vec<AggValue>,
}

impl Row {
    /// All output cells: key columns (as [`AggValue::Int`]) then
    /// aggregate columns.
    pub fn cells(&self) -> Vec<AggValue> {
        self.key
            .iter()
            .map(|&k| AggValue::Int(k))
            .chain(self.values.iter().copied())
            .collect()
    }
}

/// A finished query: labeled columns, ordered rows, execution stats.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// Output column labels: group keys first, then aggregates.
    pub columns: Vec<String>,
    /// Result rows, ordered (group-key ascending unless the query says
    /// otherwise) and limited.
    pub rows: Vec<Row>,
    /// Pruning and scan counters.
    pub stats: ExecStats,
}

/// Per-worker (or whole-serial-run) accumulator. Shared with the
/// federated catalog executor ([`crate::federated`]), which folds chunks
/// from many shards into the same state and merges it identically.
pub(crate) struct Acc {
    pub(crate) groups: HashMap<Vec<u64>, Vec<AggState>>,
    pub(crate) rows_scanned: u64,
    pub(crate) rows_matched: u64,
}

impl Acc {
    pub(crate) fn new() -> Acc {
        Acc {
            groups: HashMap::new(),
            rows_scanned: 0,
            rows_matched: 0,
        }
    }
}

/// Fold one decoded chunk into the accumulator. `full_match` skips the
/// row filter when the planner proved the whole chunk matches.
pub(crate) fn fold_chunk(acc: &mut Acc, query: &Query, cols: &NumericColumns, full_match: bool) {
    let n = cols.len();
    acc.rows_scanned += n as u64;
    let mask = if full_match {
        None
    } else {
        Some(query.predicate.eval_mask(cols))
    };
    // Vectorized: evaluate every key and aggregate-input expression once
    // per chunk, then walk rows through the selection.
    let keys: Vec<_> = query.group_by.iter().map(|e| e.eval(cols)).collect();
    let inputs: Vec<_> = query
        .aggregates
        .iter()
        .map(|a| a.input().map(|e| e.eval(cols)))
        .collect();
    let new_states =
        || -> Vec<AggState> { query.aggregates.iter().map(|a| a.new_state()).collect() };
    if keys.is_empty() {
        // Global aggregate: one group, so hoist the table lookup out of
        // the row loop entirely.
        let states = acc.groups.entry(Vec::new()).or_insert_with(new_states);
        for i in 0..n {
            if let Some(mask) = &mask {
                if !mask[i] {
                    continue;
                }
            }
            acc.rows_matched += 1;
            for (state, input) in states.iter_mut().zip(&inputs) {
                state.update(input.as_ref().map_or(0, |v| v.get(i)));
            }
        }
        return;
    }
    let mut key = Vec::with_capacity(keys.len());
    for i in 0..n {
        if let Some(mask) = &mask {
            if !mask[i] {
                continue;
            }
        }
        acc.rows_matched += 1;
        key.clear();
        key.extend(keys.iter().map(|k| k.get(i)));
        // `get_mut` first so the hot path (existing group) never clones
        // the key.
        let states = match acc.groups.get_mut(&key) {
            Some(states) => states,
            None => acc.groups.entry(key.clone()).or_insert_with(new_states),
        };
        for (state, input) in states.iter_mut().zip(&inputs) {
            state.update(input.as_ref().map_or(0, |v| v.get(i)));
        }
    }
}

/// Merge a second accumulator into the first (exact, order-insensitive).
pub(crate) fn merge_acc(a: &mut Acc, b: Acc) {
    a.rows_scanned += b.rows_scanned;
    a.rows_matched += b.rows_matched;
    for (key, states) in b.groups {
        match a.groups.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                for (dst, src) in e.get_mut().iter_mut().zip(states) {
                    dst.merge(src);
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(states);
            }
        }
    }
}

/// Canonical finalization: groups sorted by key, aggregates finalized,
/// explicit ordering and limit applied. This is where any difference in
/// accumulation order is erased, so serial ≡ parallel bit for bit.
pub(crate) fn finalize(query: &Query, acc: Acc, stats: ExecStats) -> QueryOutput {
    let mut rows: Vec<Row> = acc
        .groups
        .into_iter()
        .map(|(key, states)| Row {
            key,
            values: states
                .into_iter()
                .zip(&query.aggregates)
                .map(|(s, a)| s.finalize(a))
                .collect(),
        })
        .collect();
    rows.sort_by(|a, b| a.key.cmp(&b.key));
    // A global aggregate (no group keys) over zero matching rows still
    // yields its one row — count 0, sums 0, extrema null — like SQL.
    if rows.is_empty() && query.group_by.is_empty() {
        rows.push(Row {
            key: Vec::new(),
            values: query
                .aggregates
                .iter()
                .map(|a| a.new_state().finalize(a))
                .collect(),
        });
    }
    if let Some(order) = query.order_by {
        let key_cols = query.group_by.len();
        rows.sort_by(|a, b| {
            let cell = |r: &Row| {
                if order.column < key_cols {
                    AggValue::Int(r.key[order.column])
                } else {
                    r.values[order.column - key_cols]
                }
            };
            let (ka, kb) = (cell(a).order_key(), cell(b).order_key());
            let ord = ka.0.cmp(&kb.0).then_with(|| ka.1.total_cmp(&kb.1));
            if order.descending {
                ord.reverse()
            } else {
                ord
            }
        });
    }
    if let Some(limit) = query.limit {
        rows.truncate(limit);
    }
    QueryOutput {
        columns: query.column_labels(),
        rows,
        stats,
    }
}

pub(crate) fn stats_for(p: &crate::plan::Plan) -> ExecStats {
    ExecStats {
        chunks_total: p.chunks_total,
        chunks_scanned: p.selected.len(),
        chunks_skipped: p.chunks_skipped(),
        chunks_full_match: p.selected.iter().filter(|&&i| p.full_match[i]).count(),
        rows_scanned: 0,
        rows_matched: 0,
    }
}

/// Execute in parallel: workers claim planned chunk indices off a shared
/// counter ([`Store::par_fold_columns`]) and per-worker group tables are
/// merged exactly. Bit-identical to [`execute_serial`].
pub fn execute(store: &Store, query: &Query) -> Result<QueryOutput, QueryError> {
    let _span = swim_obs::span("query.execute");
    query.validate()?;
    let p = plan(store, query);
    let mut stats = stats_for(&p);
    let full_match = &p.full_match;
    let acc = store.par_fold_columns(
        &p.selected,
        Acc::new,
        |mut acc, idx, cols| {
            crate::obs::CHUNK_CLAIMS.incr();
            fold_chunk(&mut acc, query, cols, full_match[idx]);
            acc
        },
        |mut a, b| {
            merge_acc(&mut a, b);
            a
        },
    )?;
    stats.rows_scanned = acc.rows_scanned;
    stats.rows_matched = acc.rows_matched;
    crate::obs::record_rows(acc.rows_scanned, acc.rows_matched);
    Ok(finalize(query, acc, stats))
}

/// Execute on the calling thread, chunks in file order. The reference
/// implementation for determinism tests — and the faster choice for tiny
/// stores.
pub fn execute_serial(store: &Store, query: &Query) -> Result<QueryOutput, QueryError> {
    let _span = swim_obs::span("query.execute_serial");
    query.validate()?;
    let p = plan(store, query);
    let mut stats = stats_for(&p);
    let full_match = &p.full_match;
    let acc = store.fold_columns(&p.selected, Acc::new(), |mut acc, idx, cols| {
        fold_chunk(&mut acc, query, cols, full_match[idx]);
        acc
    })?;
    stats.rows_scanned = acc.rows_scanned;
    stats.rows_matched = acc.rows_matched;
    crate::obs::record_rows(acc.rows_scanned, acc.rows_matched);
    Ok(finalize(query, acc, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::Aggregate;
    use crate::expr::{CmpOp, Col, Expr, Pred};
    use swim_store::{store_to_vec, StoreOptions};
    use swim_trace::trace::WorkloadKind;
    use swim_trace::{DataSize, Dur, JobBuilder, Timestamp, Trace};

    fn store(n: u64, jobs_per_chunk: u32) -> Store {
        let jobs = (0..n)
            .map(|i| {
                let mut b = JobBuilder::new(i)
                    .submit(Timestamp::from_secs(i * 97 % 40_000))
                    .duration(Dur::from_secs(1 + i % 500))
                    .input(DataSize::from_bytes(i * 1_000_003 % (1 << 33)))
                    .output(DataSize::from_bytes(i * 77))
                    .map_task_time(Dur::from_secs(3 + i % 60))
                    .tasks(1 + (i % 20) as u32, (i % 4) as u32);
                if i % 4 > 0 {
                    b = b
                        .shuffle(DataSize::from_bytes(i * 13))
                        .reduce_task_time(Dur::from_secs(1 + i % 30));
                }
                b.build().unwrap()
            })
            .collect();
        let trace = Trace::new(WorkloadKind::Custom("exec".into()), 9, jobs).unwrap();
        Store::from_vec(store_to_vec(&trace, &StoreOptions { jobs_per_chunk })).unwrap()
    }

    #[test]
    fn global_count_matches_store_job_count() {
        let store = store(1_000, 64);
        let q = Query::new().select(Aggregate::Count);
        let out = execute(&store, &q).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].values, vec![AggValue::Int(1_000)]);
        assert_eq!(out.stats.chunks_skipped, 0);
        assert_eq!(out.stats.rows_matched, 1_000);
    }

    #[test]
    fn serial_and_parallel_are_bit_identical() {
        let store = store(5_000, 37);
        let queries = [
            Query::new().select(Aggregate::Count),
            Query::new()
                .filter(Pred::cmp(Col::Duration, CmpOp::Ge, 250))
                .group(Expr::submit_hour())
                .select(Aggregate::Count)
                .select(Aggregate::Sum(Expr::total_io()))
                .select(Aggregate::Avg(Expr::col(Col::Duration)))
                .select(Aggregate::Percentile(Expr::col(Col::Duration), 0.9)),
            Query::new()
                .filter(Pred::cmp(Col::Input, CmpOp::Gt, 1 << 30))
                .group(Expr::col(Col::ReduceTasks))
                .select(Aggregate::Min(Expr::col(Col::Submit)))
                .select(Aggregate::Max(Expr::col(Col::Submit)))
                .order_by(1, true)
                .limit(3),
        ];
        for q in &queries {
            let serial = execute_serial(&store, q).unwrap();
            for _ in 0..3 {
                // Parallel scheduling varies run to run; results may not.
                assert_eq!(execute(&store, q).unwrap(), serial);
            }
        }
    }

    #[test]
    fn zone_pruning_skips_chunks_and_preserves_results() {
        let store = store(10_000, 50);
        // Submit range predicate: only a slice of chunks overlaps.
        let q = Query::new()
            .filter(Pred::submit_range(10_000, 12_000))
            .select(Aggregate::Count);
        let out = execute(&store, &q).unwrap();
        assert!(
            out.stats.chunks_skipped > 0,
            "expected skips: {:?}",
            out.stats
        );
        // Oracle: count via the store's job-level range scan.
        let expected = store
            .par_scan_range(
                Timestamp::from_secs(10_000),
                Timestamp::from_secs(12_000),
                || 0u64,
                |n, _| n + 1,
                |a, b| a + b,
            )
            .unwrap();
        assert_eq!(out.rows[0].values, vec![AggValue::Int(expected)]);
    }

    #[test]
    fn empty_match_yields_single_null_row_globally_and_no_rows_grouped() {
        let store = store(500, 64);
        let never = Pred::cmp(Col::Duration, CmpOp::Gt, u64::MAX - 1);
        let global = Query::new()
            .filter(never.clone())
            .select(Aggregate::Count)
            .select(Aggregate::Min(Expr::col(Col::Input)))
            .select(Aggregate::Avg(Expr::col(Col::Input)));
        let out = execute(&store, &global).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(
            out.rows[0].values,
            vec![AggValue::Int(0), AggValue::Null, AggValue::Null]
        );
        assert_eq!(out.stats.chunks_scanned, 0, "all chunks skippable");

        let grouped = Query::new()
            .filter(never)
            .group(Expr::col(Col::MapTasks))
            .select(Aggregate::Count);
        assert!(execute(&store, &grouped).unwrap().rows.is_empty());
    }

    #[test]
    fn group_rows_are_sorted_by_key_and_orderable_by_aggregate() {
        let store = store(2_000, 100);
        let q = Query::new()
            .group(Expr::col(Col::ReduceTasks))
            .select(Aggregate::Count);
        let out = execute(&store, &q).unwrap();
        let keys: Vec<u64> = out.rows.iter().map(|r| r.key[0]).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert_eq!(keys, vec![0, 1, 2, 3]);
        // Descending by count.
        let q = q.order_by(1, true).limit(2);
        let out = execute(&store, &q).unwrap();
        assert_eq!(out.rows.len(), 2);
        let counts: Vec<_> = out.rows.iter().map(|r| r.values[0]).collect();
        assert!(counts[0].order_key().1 >= counts[1].order_key().1);
    }

    #[test]
    fn full_match_chunks_skip_the_row_filter_but_count_rows() {
        let store = store(1_000, 100);
        let q = Query::new()
            .filter(Pred::cmp(Col::Duration, CmpOp::Ge, 1)) // true for all
            .select(Aggregate::Count);
        let out = execute(&store, &q).unwrap();
        assert_eq!(out.stats.chunks_full_match, out.stats.chunks_scanned);
        assert_eq!(out.rows[0].values, vec![AggValue::Int(1_000)]);
    }

    #[test]
    fn empty_store_global_query_yields_zero_row() {
        let trace = Trace::new(WorkloadKind::Custom("empty".into()), 1, vec![]).unwrap();
        let store = Store::from_vec(store_to_vec(&trace, &StoreOptions::default())).unwrap();
        let out = execute(&store, &Query::new().select(Aggregate::Count)).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].values, vec![AggValue::Int(0)]);
    }
}
