//! `swim-query`: filter/group/aggregate queries over a `.swim` columnar
//! store, with zone-map chunk skipping.
//!
//! ```text
//! swim-query --trace x.swim --select "count,sum(total_io)" \
//!            [--where "input > 1gb and duration < 2h"] \
//!            [--group-by "submit/3600"] \
//!            [--order-by N] [--desc] [--limit N] \
//!            [--format table|md|json] [--serial]
//! ```
//!
//! Results go to stdout; the scan/pruning summary goes to stderr (so
//! `--format json` output stays machine-parseable).

use std::process::ExitCode;
use swim_query::{execute, execute_serial, parse, render, Query};
use swim_store::Store;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Table,
    Markdown,
    Json,
}

struct Args {
    trace: String,
    select: String,
    where_: String,
    group_by: String,
    order_by: Option<usize>,
    descending: bool,
    limit: Option<usize>,
    format: Format,
    serial: bool,
}

const USAGE: &str = "usage: swim-query --trace TRACE.swim --select AGGS \
 [--where PRED] [--group-by EXPRS] [--order-by N] [--desc] [--limit N] \
 [--format table|md|json] [--serial]\n\
 columns: id submit duration input shuffle output map_time reduce_time \
 map_tasks reduce_tasks (derived: total_io total_task_time total_tasks)\n\
 aggregates: count sum min max avg p0..p100, e.g. \
 --select \"count,sum(total_io),p50(duration)\"\n\
 predicates: comparisons over expressions with and/or/not and unit \
 suffixes, e.g. --where \"input >= 1gb and submit < 2d\"\n\
 group keys: expressions, e.g. --group-by \"submit/3600\" for hourly bins\n\
 --order-by N orders by 1-based output column (group keys first)";

/// `Ok(None)` means `--help` was requested.
fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        trace: String::new(),
        select: "count".into(),
        where_: String::new(),
        group_by: String::new(),
        order_by: None,
        descending: false,
        limit: None,
        format: Format::Table,
        serial: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut next = |flag: &str| {
            iter.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--trace" => args.trace = next("--trace")?,
            "--select" => args.select = next("--select")?,
            "--where" => args.where_ = next("--where")?,
            "--group-by" => args.group_by = next("--group-by")?,
            "--order-by" => {
                let n: usize = next("--order-by")?
                    .parse()
                    .map_err(|_| "--order-by requires a 1-based column number".to_owned())?;
                if n == 0 {
                    return Err("--order-by columns are 1-based".into());
                }
                args.order_by = Some(n - 1);
            }
            "--desc" => args.descending = true,
            "--limit" => {
                args.limit = Some(
                    next("--limit")?
                        .parse()
                        .map_err(|_| "--limit requires an integer".to_owned())?,
                )
            }
            "--format" => {
                args.format = match next("--format")?.as_str() {
                    "table" | "text" => Format::Table,
                    "md" | "markdown" => Format::Markdown,
                    "json" => Format::Json,
                    other => {
                        return Err(format!("unknown format {other} (expected table|md|json)"))
                    }
                }
            }
            "--serial" => args.serial = true,
            "--help" | "-h" => return Ok(None),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other if args.trace.is_empty() => args.trace = other.to_owned(),
            other => return Err(format!("unexpected argument {other}")),
        }
    }
    if args.trace.is_empty() {
        return Err("a store file is required (swim-query --trace x.swim)".into());
    }
    Ok(Some(args))
}

fn build_query(args: &Args) -> Result<Query, String> {
    let mut query = Query::new().filter(parse::parse_predicate(&args.where_)?);
    for key in parse::parse_group_by(&args.group_by)? {
        query = query.group(key);
    }
    for agg in parse::parse_aggregates(&args.select)? {
        query = query.select(agg);
    }
    if let Some(column) = args.order_by {
        query = query.order_by(column, args.descending);
    }
    if let Some(limit) = args.limit {
        query = query.limit(limit);
    }
    Ok(query)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        // An explicit --help/-h is a successful run: usage on stdout.
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Ok(Some(a)) => a,
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let store = match Store::open(&args.trace) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: open {}: {e}", args.trace);
            return ExitCode::FAILURE;
        }
    };
    let query = match build_query(&args) {
        Ok(q) => q,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = if args.serial {
        execute_serial(&store, &query)
    } else {
        execute(&store, &query)
    };
    let output = match result {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let title = format!("swim-query: {}", args.trace);
    match args.format {
        Format::Table => print!("{}", render::render_text(&output)),
        Format::Markdown => print!("{}", render::render_markdown(&output, &title)),
        Format::Json => println!("{}", render::render_json(&output)),
    }
    eprintln!(
        "{} (store v{}, {} jobs)",
        render::stats_line(&output),
        store.format_version(),
        store.job_count()
    );
    ExitCode::SUCCESS
}
