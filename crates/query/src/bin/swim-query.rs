//! `swim-query`: filter/group/aggregate queries over a `.swim` columnar
//! store — or, with `--catalog`, federated over every shard of a
//! `swim-catalog` dataset directory — with zone-map pruning (per-chunk
//! for stores; shard-level *then* per-chunk for catalogs).
//!
//! ```text
//! swim-query --trace x.swim --select "count,sum(total_io)" \
//!            [--where "input > 1gb and duration < 2h"] \
//!            [--group-by "submit/3600"] \
//!            [--order-by N] [--desc] [--limit N] \
//!            [--format table|md|json] [--serial] [--explain | --profile]
//! swim-query --catalog dataset.d --select count [--where …] […]
//! ```
//!
//! The query flag set is shared with `swim-catalog query`
//! ([`swim_query::cli`]). Results go to stdout; the scan/pruning summary
//! goes to stderr (so `--format json` output stays machine-parseable).
//!
//! `--explain` prints the plan tree and zone-map verdict counts without
//! executing; `--profile` executes with all `swim-obs` instrumentation
//! forced on and appends the collected metrics. Setting `SWIM_OBS`
//! (`metric`,`span`,`all`) enables instrumentation without `--profile`,
//! and `SWIM_OBS_JSONL=FILE` appends the final snapshot as JSON lines.

use std::process::ExitCode;
use swim_query::{cli, Session};

struct Args {
    trace: String,
    catalog: String,
    flags: cli::QueryFlags,
}

const USAGE: &str = "usage: swim-query (--trace TRACE.swim | --catalog DIR) --select AGGS \
 [--where PRED] [--group-by EXPRS] [--order-by N] [--desc] [--limit N] \
 [--format table|md|json] [--serial] [--explain | --profile]\n\
 --explain prints the plan tree and zone-map verdict counts \
 (never/always/maybe) without executing; --profile executes with \
 swim-obs instrumentation forced on and appends the metrics\n\
 --catalog runs the query federated over every shard of a swim-catalog \
 directory (shard-level zone pruning, then per-chunk)\n\
 columns: id submit duration input shuffle output map_time reduce_time \
 map_tasks reduce_tasks (derived: total_io total_task_time total_tasks)\n\
 aggregates: count sum min max avg p0..p100, e.g. \
 --select \"count,sum(total_io),p50(duration)\"\n\
 predicates: comparisons over expressions with and/or/not and unit \
 suffixes, e.g. --where \"input >= 1gb and submit < 2d\"\n\
 group keys: expressions, e.g. --group-by \"submit/3600\" for hourly bins\n\
 --order-by N orders by 1-based output column (group keys first)";

/// Usage errors (malformed command line, unparsable query) exit 2 with
/// the usage text; runtime errors (missing file, corrupt store, failed
/// execution) exit 1 without it. Both start stderr with `error: …`.
fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

/// `Ok(None)` means `--help` was requested.
fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        trace: String::new(),
        catalog: String::new(),
        flags: cli::QueryFlags::new(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut next = |flag: &str| {
            iter.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--trace" => args.trace = next("--trace")?,
            "--catalog" => args.catalog = next("--catalog")?,
            "--help" | "-h" => return Ok(None),
            flag => {
                if args.flags.accept(flag, || next(flag))? {
                    continue;
                }
                if flag.starts_with('-') {
                    return Err(format!("unknown flag {flag}"));
                }
                if args.trace.is_empty() {
                    args.trace = flag.to_owned();
                } else {
                    return Err(format!("unexpected argument {flag}"));
                }
            }
        }
    }
    if args.trace.is_empty() && args.catalog.is_empty() {
        return Err("a store file or catalog directory is required \
             (swim-query --trace x.swim | --catalog dir)"
            .into());
    }
    if !args.trace.is_empty() && !args.catalog.is_empty() {
        return Err("--trace and --catalog are mutually exclusive".into());
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        // An explicit --help/-h is a successful run: usage on stdout.
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Ok(Some(a)) => a,
        Err(msg) => return usage_error(&msg),
    };
    if let Err(msg) = args.flags.validate() {
        return usage_error(&msg);
    }
    let query = match args.flags.build_query() {
        Ok(q) => q,
        Err(msg) => return usage_error(&msg),
    };
    swim_obs::init_from_env();
    if args.flags.profile {
        // Profiling owns the whole process: force everything on and
        // start from zero so the printed counters cover exactly this
        // query.
        swim_obs::set_enabled(swim_obs::ALL);
        swim_obs::reset();
    }
    // One shared execution path for both sources: the Session engine
    // (also what swim-catalog query and swim-serve run on). Open errors
    // keep the raw store/catalog error text.
    let (session, path) = if !args.catalog.is_empty() {
        // Federated path: every shard of a catalog directory, pruned at
        // the shard level before any file is opened.
        match Session::open_catalog(&args.catalog) {
            Ok(s) => (s, args.catalog),
            Err(e) => {
                eprintln!("error: open {}: {e}", args.catalog);
                return ExitCode::FAILURE;
            }
        }
    } else {
        match Session::open_store(&args.trace) {
            Ok(s) => (s, args.trace),
            Err(e) => {
                eprintln!("error: open {}: {e}", args.trace);
                return ExitCode::FAILURE;
            }
        }
    };
    if args.flags.explain {
        return match session.explain(&query) {
            Ok(explain) => {
                let title = format!("explain: {path}");
                print!(
                    "{}",
                    cli::render_explain(&explain, args.flags.format, &title)
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let result = match session.execute(&query, args.flags.serial) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let title = format!("swim-query: {path}");
    print!(
        "{}",
        cli::render_for(&result.output, args.flags.format, &title)
    );
    eprintln!("{}", result.summary);
    finish_profile(&args.flags);
    ExitCode::SUCCESS
}

/// Print `--profile` metrics to stdout (below the query result) and
/// honour `SWIM_OBS_JSONL` regardless of flags.
fn finish_profile(flags: &cli::QueryFlags) {
    let snap = swim_obs::snapshot();
    if flags.profile {
        let sep = match flags.format {
            // JSON lines follow the result object directly.
            cli::OutputFormat::Json => "",
            _ => "\n",
        };
        print!("{sep}{}", cli::render_profile(&snap, flags.format));
    }
    if let Err(e) = swim_obs::jsonl::append_env(&snap) {
        eprintln!("warning: SWIM_OBS_JSONL: {e}");
    }
}
