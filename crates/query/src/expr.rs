//! Typed expressions and predicates over trace columns.
//!
//! Everything is computed in the `u64` domain the store encodes —
//! seconds, bytes, counts — with *saturating* arithmetic, so results are
//! exact integers and every evaluation order produces identical bits
//! (saturating sums of unsigned values are order-insensitive). Division
//! by zero is defined as zero to keep evaluation total.
//!
//! Each expression supports two evaluation modes:
//!
//! * **vectorized** ([`Expr::eval`]) over a decoded chunk's
//!   [`NumericColumns`], producing a column of values (raw columns are
//!   borrowed, never copied; literals stay scalar);
//! * **interval** ([`Expr::bounds`]) over a chunk's [`ZoneMap`],
//!   producing conservative `[lo, hi]` bounds that the planner uses to
//!   skip chunks without reading them.

use std::fmt;
use swim_store::format::columns::NumericColumns;
use swim_store::ZoneMap;

/// A physical numeric column of the store (the ten columns of
/// [`NumericColumns`], in layout order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Col {
    /// Job id.
    Id,
    /// Submit time, seconds since trace epoch.
    Submit,
    /// Wall-clock duration, seconds.
    Duration,
    /// Map-stage input bytes.
    Input,
    /// Shuffle bytes.
    Shuffle,
    /// Output bytes.
    Output,
    /// Total map task-time, slot-seconds.
    MapTime,
    /// Total reduce task-time, slot-seconds.
    ReduceTime,
    /// Number of map tasks.
    MapTasks,
    /// Number of reduce tasks.
    ReduceTasks,
}

impl Col {
    /// All columns, in the store's column layout order.
    pub const ALL: [Col; 10] = [
        Col::Id,
        Col::Submit,
        Col::Duration,
        Col::Input,
        Col::Shuffle,
        Col::Output,
        Col::MapTime,
        Col::ReduceTime,
        Col::MapTasks,
        Col::ReduceTasks,
    ];

    /// The column's name in query text.
    pub const fn name(self) -> &'static str {
        match self {
            Col::Id => "id",
            Col::Submit => "submit",
            Col::Duration => "duration",
            Col::Input => "input",
            Col::Shuffle => "shuffle",
            Col::Output => "output",
            Col::MapTime => "map_time",
            Col::ReduceTime => "reduce_time",
            Col::MapTasks => "map_tasks",
            Col::ReduceTasks => "reduce_tasks",
        }
    }

    /// Index of the column in a [`ZoneMap`]'s `min`/`max` arrays.
    pub const fn zone_index(self) -> usize {
        match self {
            Col::Id => 0,
            Col::Submit => 1,
            Col::Duration => 2,
            Col::Input => 3,
            Col::Shuffle => 4,
            Col::Output => 5,
            Col::MapTime => 6,
            Col::ReduceTime => 7,
            Col::MapTasks => 8,
            Col::ReduceTasks => 9,
        }
    }

    /// The column's decoded values within one chunk.
    pub fn slice(self, cols: &NumericColumns) -> &[u64] {
        match self {
            Col::Id => &cols.ids,
            Col::Submit => &cols.submits,
            Col::Duration => &cols.durations,
            Col::Input => &cols.inputs,
            Col::Shuffle => &cols.shuffles,
            Col::Output => &cols.outputs,
            Col::MapTime => &cols.map_times,
            Col::ReduceTime => &cols.reduce_times,
            Col::MapTasks => &cols.map_tasks,
            Col::ReduceTasks => &cols.reduce_tasks,
        }
    }
}

impl fmt::Display for Col {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A scalar expression over one job's numeric columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A raw column.
    Col(Col),
    /// A literal.
    Lit(u64),
    /// Saturating addition.
    Add(Box<Expr>, Box<Expr>),
    /// Saturating subtraction (floors at zero).
    Sub(Box<Expr>, Box<Expr>),
    /// Saturating multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Integer division; `x / 0` is defined as `0`.
    Div(Box<Expr>, Box<Expr>),
}

/// One evaluated expression over a chunk: a scalar (literals), a borrowed
/// raw column, or a computed column.
#[derive(Debug, Clone)]
pub enum Values<'a> {
    /// The same value for every row (literal subtrees).
    Scalar(u64),
    /// A raw column, borrowed from the decoded chunk.
    Borrowed(&'a [u64]),
    /// A computed column.
    Owned(Vec<u64>),
}

impl Values<'_> {
    /// Value at row `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        match self {
            Values::Scalar(v) => *v,
            Values::Borrowed(s) => s[i],
            Values::Owned(v) => v[i],
        }
    }
}

fn apply_op<'a>(
    op: impl Fn(u64, u64) -> u64,
    a: Values<'a>,
    b: Values<'a>,
    n: usize,
) -> Values<'a> {
    match (&a, &b) {
        (Values::Scalar(x), Values::Scalar(y)) => Values::Scalar(op(*x, *y)),
        _ => Values::Owned((0..n).map(|i| op(a.get(i), b.get(i))).collect()),
    }
}

impl Expr {
    /// Convenience constructor: a raw column.
    pub fn col(c: Col) -> Expr {
        Expr::Col(c)
    }

    /// Convenience constructor: a literal.
    pub fn lit(v: u64) -> Expr {
        Expr::Lit(v)
    }

    /// `input + shuffle + output` — the paper's "bytes moved" per job.
    pub fn total_io() -> Expr {
        Expr::Add(
            Box::new(Expr::Add(
                Box::new(Expr::Col(Col::Input)),
                Box::new(Expr::Col(Col::Shuffle)),
            )),
            Box::new(Expr::Col(Col::Output)),
        )
    }

    /// `map_time + reduce_time` — total slot-seconds per job.
    pub fn total_task_time() -> Expr {
        Expr::Add(
            Box::new(Expr::Col(Col::MapTime)),
            Box::new(Expr::Col(Col::ReduceTime)),
        )
    }

    /// `map_tasks + reduce_tasks`.
    pub fn total_tasks() -> Expr {
        Expr::Add(
            Box::new(Expr::Col(Col::MapTasks)),
            Box::new(Expr::Col(Col::ReduceTasks)),
        )
    }

    /// `submit / 3600` — the Fig. 7 hourly bucket key.
    pub fn submit_hour() -> Expr {
        Expr::Div(Box::new(Expr::Col(Col::Submit)), Box::new(Expr::Lit(3600)))
    }

    /// Evaluate vectorized over one chunk.
    pub fn eval<'a>(&self, cols: &'a NumericColumns) -> Values<'a> {
        let n = cols.len();
        match self {
            Expr::Col(c) => Values::Borrowed(c.slice(cols)),
            Expr::Lit(v) => Values::Scalar(*v),
            Expr::Add(a, b) => apply_op(u64::saturating_add, a.eval(cols), b.eval(cols), n),
            Expr::Sub(a, b) => apply_op(u64::saturating_sub, a.eval(cols), b.eval(cols), n),
            Expr::Mul(a, b) => apply_op(u64::saturating_mul, a.eval(cols), b.eval(cols), n),
            Expr::Div(a, b) => apply_op(
                |x, y| x.checked_div(y).unwrap_or(0),
                a.eval(cols),
                b.eval(cols),
                n,
            ),
        }
    }

    /// Evaluate for a single row (the oracle path used by tests; the
    /// engine itself always evaluates vectorized).
    pub fn eval_row(&self, cols: &NumericColumns, i: usize) -> u64 {
        match self {
            Expr::Col(c) => c.slice(cols)[i],
            Expr::Lit(v) => *v,
            Expr::Add(a, b) => a.eval_row(cols, i).saturating_add(b.eval_row(cols, i)),
            Expr::Sub(a, b) => a.eval_row(cols, i).saturating_sub(b.eval_row(cols, i)),
            Expr::Mul(a, b) => a.eval_row(cols, i).saturating_mul(b.eval_row(cols, i)),
            Expr::Div(a, b) => a
                .eval_row(cols, i)
                .checked_div(b.eval_row(cols, i))
                .unwrap_or(0),
        }
    }

    /// Conservative `[lo, hi]` bounds of this expression over every job
    /// in a chunk with the given zone map. Sound for pruning: the actual
    /// value of the expression on any job in the chunk lies within.
    pub fn bounds(&self, zone: &ZoneMap) -> (u64, u64) {
        match self {
            Expr::Col(c) => (zone.min[c.zone_index()], zone.max[c.zone_index()]),
            Expr::Lit(v) => (*v, *v),
            Expr::Add(a, b) => {
                let ((la, ha), (lb, hb)) = (a.bounds(zone), b.bounds(zone));
                (la.saturating_add(lb), ha.saturating_add(hb))
            }
            Expr::Sub(a, b) => {
                let ((la, ha), (lb, hb)) = (a.bounds(zone), b.bounds(zone));
                (la.saturating_sub(hb), ha.saturating_sub(lb))
            }
            Expr::Mul(a, b) => {
                let ((la, ha), (lb, hb)) = (a.bounds(zone), b.bounds(zone));
                (la.saturating_mul(lb), ha.saturating_mul(hb))
            }
            Expr::Div(a, b) => {
                let ((la, ha), (lb, hb)) = (a.bounds(zone), b.bounds(zone));
                // x / 0 == 0 by definition, so a zero divisor anywhere in
                // range pulls the low bound to 0; a divisor that is zero
                // everywhere pins both bounds there.
                let lo = if lb == 0 {
                    0
                } else {
                    la.checked_div(hb).unwrap_or(0)
                };
                let hi = if hb == 0 { 0 } else { ha / lb.max(1) };
                (lo, hi)
            }
        }
    }

    fn fmt_child(child: &Expr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match child {
            Expr::Col(_) | Expr::Lit(_) => write!(f, "{child}"),
            _ => write!(f, "({child})"),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Derived columns print by name, so `sum(total_io)` stays
        // readable in headers instead of expanding to its tree.
        for (derived, name) in [
            (Expr::total_io(), "total_io"),
            (Expr::total_task_time(), "total_task_time"),
            (Expr::total_tasks(), "total_tasks"),
        ] {
            if *self == derived {
                return f.write_str(name);
            }
        }
        match self {
            Expr::Col(c) => write!(f, "{c}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                Expr::fmt_child(a, f)?;
                let op = match self {
                    Expr::Add(..) => '+',
                    Expr::Sub(..) => '-',
                    Expr::Mul(..) => '*',
                    _ => '/',
                };
                write!(f, "{op}")?;
                Expr::fmt_child(b, f)
            }
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Apply to one pair of values.
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }

    const fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Three-valued zone-map verdict for a predicate over one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// No job in the chunk can match: skip the chunk without reading it.
    Never,
    /// Some jobs may match: read the chunk and filter rows.
    Maybe,
    /// Every job in the chunk matches: read the chunk, skip the filter.
    Always,
}

impl Tri {
    fn and(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::Never, _) | (_, Tri::Never) => Tri::Never,
            (Tri::Always, Tri::Always) => Tri::Always,
            _ => Tri::Maybe,
        }
    }

    fn or(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::Always, _) | (_, Tri::Always) => Tri::Always,
            (Tri::Never, Tri::Never) => Tri::Never,
            _ => Tri::Maybe,
        }
    }

    fn not(self) -> Tri {
        match self {
            Tri::Never => Tri::Always,
            Tri::Maybe => Tri::Maybe,
            Tri::Always => Tri::Never,
        }
    }
}

/// A row predicate: comparisons combined with boolean operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pred {
    /// Matches every row (the empty `--where`).
    True,
    /// `lhs op rhs`.
    Cmp(Expr, CmpOp, Expr),
    /// Both must match.
    And(Box<Pred>, Box<Pred>),
    /// Either must match.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl Pred {
    /// Convenience constructor: `col op literal`.
    pub fn cmp(col: Col, op: CmpOp, lit: u64) -> Pred {
        Pred::Cmp(Expr::Col(col), op, Expr::Lit(lit))
    }

    /// `a and b`.
    pub fn and(self, other: Pred) -> Pred {
        Pred::And(Box::new(self), Box::new(other))
    }

    /// `a or b`.
    pub fn or(self, other: Pred) -> Pred {
        Pred::Or(Box::new(self), Box::new(other))
    }

    /// `submit in [from, to)` — the store's range-scan bounds.
    pub fn submit_range(from: u64, to: u64) -> Pred {
        Pred::cmp(Col::Submit, CmpOp::Ge, from).and(Pred::cmp(Col::Submit, CmpOp::Lt, to))
    }

    /// Zone-map verdict for one chunk, from interval analysis of both
    /// comparison sides. [`Tri::Never`] and [`Tri::Always`] are sound:
    /// they hold for *every* job the chunk can contain.
    pub fn zone_verdict(&self, zone: &ZoneMap) -> Tri {
        match self {
            Pred::True => Tri::Always,
            Pred::Cmp(a, op, b) => {
                let ((la, ha), (lb, hb)) = (a.bounds(zone), b.bounds(zone));
                match op {
                    CmpOp::Lt => cmp_tri(ha < lb, la >= hb),
                    CmpOp::Le => cmp_tri(ha <= lb, la > hb),
                    CmpOp::Gt => cmp_tri(la > hb, ha <= lb),
                    CmpOp::Ge => cmp_tri(la >= hb, ha < lb),
                    CmpOp::Eq => cmp_tri(la == ha && lb == hb && la == lb, ha < lb || la > hb),
                    // Ne is the negation of Eq's verdict: disjoint ranges
                    // mean every row differs (Always), a shared singleton
                    // means none does (Never).
                    CmpOp::Ne => {
                        cmp_tri(la == ha && lb == hb && la == lb, ha < lb || la > hb).not()
                    }
                }
            }
            Pred::And(a, b) => a.zone_verdict(zone).and(b.zone_verdict(zone)),
            Pred::Or(a, b) => a.zone_verdict(zone).or(b.zone_verdict(zone)),
            Pred::Not(p) => p.zone_verdict(zone).not(),
        }
    }

    /// Vectorized row filter over one chunk.
    pub fn eval_mask(&self, cols: &NumericColumns) -> Vec<bool> {
        let n = cols.len();
        match self {
            Pred::True => vec![true; n],
            Pred::Cmp(a, op, b) => {
                let (va, vb) = (a.eval(cols), b.eval(cols));
                (0..n).map(|i| op.eval(va.get(i), vb.get(i))).collect()
            }
            Pred::And(a, b) => {
                let mut m = a.eval_mask(cols);
                let mb = b.eval_mask(cols);
                for (x, y) in m.iter_mut().zip(mb) {
                    *x = *x && y;
                }
                m
            }
            Pred::Or(a, b) => {
                let mut m = a.eval_mask(cols);
                let mb = b.eval_mask(cols);
                for (x, y) in m.iter_mut().zip(mb) {
                    *x = *x || y;
                }
                m
            }
            Pred::Not(p) => {
                let mut m = p.eval_mask(cols);
                for x in m.iter_mut() {
                    *x = !*x;
                }
                m
            }
        }
    }

    /// Row filter for a single row (the oracle path used by tests).
    pub fn eval_row(&self, cols: &NumericColumns, i: usize) -> bool {
        match self {
            Pred::True => true,
            Pred::Cmp(a, op, b) => op.eval(a.eval_row(cols, i), b.eval_row(cols, i)),
            Pred::And(a, b) => a.eval_row(cols, i) && b.eval_row(cols, i),
            Pred::Or(a, b) => a.eval_row(cols, i) || b.eval_row(cols, i),
            Pred::Not(p) => !p.eval_row(cols, i),
        }
    }
}

/// `(always, never)` — at most one may hold — to a [`Tri`].
fn cmp_tri(always: bool, never: bool) -> Tri {
    debug_assert!(!(always && never), "a comparison cannot be both");
    if always {
        Tri::Always
    } else if never {
        Tri::Never
    } else {
        Tri::Maybe
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::True => write!(f, "true"),
            Pred::Cmp(a, op, b) => write!(f, "{a} {op} {b}"),
            Pred::And(a, b) => write!(f, "({a} and {b})"),
            Pred::Or(a, b) => write!(f, "({a} or {b})"),
            Pred::Not(p) => write!(f, "not ({p})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk() -> NumericColumns {
        NumericColumns {
            ids: vec![0, 1, 2],
            submits: vec![10, 20, 30],
            durations: vec![5, 50, 500],
            inputs: vec![100, 0, 1000],
            shuffles: vec![0, 0, 7],
            outputs: vec![1, 2, 3],
            map_times: vec![9, 9, 9],
            reduce_times: vec![0, 1, 2],
            map_tasks: vec![1, 2, 3],
            reduce_tasks: vec![0, 0, 1],
        }
    }

    #[test]
    fn vectorized_eval_matches_row_eval() {
        let cols = chunk();
        let exprs = [
            Expr::total_io(),
            Expr::total_task_time(),
            Expr::submit_hour(),
            Expr::Sub(Box::new(Expr::col(Col::Duration)), Box::new(Expr::lit(40))),
            Expr::Mul(
                Box::new(Expr::col(Col::MapTasks)),
                Box::new(Expr::lit(u64::MAX)),
            ),
            Expr::Div(Box::new(Expr::col(Col::Input)), Box::new(Expr::lit(0))),
        ];
        for e in &exprs {
            let v = e.eval(&cols);
            for i in 0..cols.len() {
                assert_eq!(v.get(i), e.eval_row(&cols, i), "{e} row {i}");
            }
        }
    }

    #[test]
    fn saturating_and_div_by_zero_semantics() {
        let cols = chunk();
        // 5 - 40 floors at 0.
        let sub = Expr::Sub(Box::new(Expr::col(Col::Duration)), Box::new(Expr::lit(40)));
        assert_eq!(sub.eval(&cols).get(0), 0);
        // x / 0 == 0.
        let div = Expr::Div(Box::new(Expr::col(Col::Input)), Box::new(Expr::lit(0)));
        assert_eq!(div.eval(&cols).get(2), 0);
        // 2 * u64::MAX saturates.
        let mul = Expr::Mul(
            Box::new(Expr::col(Col::MapTasks)),
            Box::new(Expr::lit(u64::MAX)),
        );
        assert_eq!(mul.eval(&cols).get(1), u64::MAX);
    }

    fn zone() -> ZoneMap {
        let mut min = [0u64; swim_store::ZONE_COLUMNS];
        let mut max = [0u64; swim_store::ZONE_COLUMNS];
        for c in Col::ALL {
            let values = c.slice(&chunk()).to_vec();
            min[c.zone_index()] = values.iter().copied().min().unwrap();
            max[c.zone_index()] = values.iter().copied().max().unwrap();
        }
        ZoneMap { min, max }
    }

    #[test]
    fn bounds_bracket_every_row() {
        let cols = chunk();
        let z = zone();
        let exprs = [
            Expr::total_io(),
            Expr::submit_hour(),
            Expr::Div(
                Box::new(Expr::col(Col::Input)),
                Box::new(Expr::col(Col::MapTasks)),
            ),
            Expr::Div(
                Box::new(Expr::col(Col::Input)),
                Box::new(Expr::col(Col::ReduceTasks)), // divisor range includes 0
            ),
            Expr::Sub(
                Box::new(Expr::col(Col::Duration)),
                Box::new(Expr::col(Col::Submit)),
            ),
        ];
        for e in &exprs {
            let (lo, hi) = e.bounds(&z);
            for i in 0..cols.len() {
                let v = e.eval_row(&cols, i);
                assert!(lo <= v && v <= hi, "{e}: {v} outside [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn zone_verdicts_are_sound_and_tight() {
        let z = zone(); // submit in [10, 30]
        let p = Pred::cmp(Col::Submit, CmpOp::Lt, 5);
        assert_eq!(p.zone_verdict(&z), Tri::Never);
        let p = Pred::cmp(Col::Submit, CmpOp::Lt, 100);
        assert_eq!(p.zone_verdict(&z), Tri::Always);
        let p = Pred::cmp(Col::Submit, CmpOp::Lt, 25);
        assert_eq!(p.zone_verdict(&z), Tri::Maybe);
        // Ne: disjoint → Always; shared singleton → Never.
        assert_eq!(
            Pred::cmp(Col::Submit, CmpOp::Ne, 297).zone_verdict(&z),
            Tri::Always
        );
        assert_eq!(
            Pred::cmp(Col::Submit, CmpOp::Ne, 20).zone_verdict(&z),
            Tri::Maybe
        );
        assert_eq!(
            Pred::Cmp(Expr::lit(7), CmpOp::Ne, Expr::lit(7)).zone_verdict(&z),
            Tri::Never
        );
        // not flips Never/Always.
        assert_eq!(
            Pred::Not(Box::new(Pred::cmp(Col::Submit, CmpOp::Lt, 5))).zone_verdict(&z),
            Tri::Always
        );
        // and/or combine.
        assert_eq!(
            Pred::cmp(Col::Submit, CmpOp::Ge, 0)
                .and(Pred::cmp(Col::Duration, CmpOp::Gt, 1000))
                .zone_verdict(&z),
            Tri::Never
        );
        assert_eq!(
            Pred::cmp(Col::Submit, CmpOp::Lt, 5)
                .or(Pred::cmp(Col::Duration, CmpOp::Le, 500))
                .zone_verdict(&z),
            Tri::Always
        );
    }

    #[test]
    fn mask_matches_row_filter() {
        let cols = chunk();
        let p = Pred::cmp(Col::Input, CmpOp::Gt, 50)
            .and(Pred::cmp(Col::Duration, CmpOp::Lt, 100))
            .or(Pred::Not(Box::new(Pred::cmp(
                Col::ReduceTasks,
                CmpOp::Eq,
                0,
            ))));
        let mask = p.eval_mask(&cols);
        for (i, &m) in mask.iter().enumerate() {
            assert_eq!(m, p.eval_row(&cols, i), "row {i}");
        }
        assert_eq!(mask, vec![true, false, true]);
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(Expr::total_io().to_string(), "total_io");
        assert_eq!(Expr::total_task_time().to_string(), "total_task_time");
        assert_eq!(Expr::submit_hour().to_string(), "submit/3600");
        assert_eq!(
            Pred::submit_range(0, 60).to_string(),
            "(submit >= 0 and submit < 60)"
        );
    }
}
