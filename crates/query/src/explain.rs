//! `swim-query --explain`: the physical plan and its zone-map verdicts,
//! **without executing** the query.
//!
//! An [`Explain`] is pure planner output: the logical plan tree
//! (top-down: limit → order by → aggregate → group by → filter → scan)
//! and, per target store, the chunk verdict counts —
//! how many chunks the predicate's interval analysis classified
//! [`Never`](crate::Tri::Never) (never read),
//! [`Always`](crate::Tri::Always) (read, row filter skipped), and
//! [`Maybe`](crate::Tri::Maybe) (read and filtered). Over a catalog the
//! same three-way split is first reported at the shard level (manifest
//! zone maps); only non-`Never` shards have their footers opened for
//! chunk-level planning — no chunk payload is ever read either way.
//!
//! The counts are *checkable* against execution: for the same query,
//! `always + maybe` here equals `chunks_scanned` in
//! [`crate::ExecStats`] and the `store.chunks_decoded` counter observed
//! under `--profile` — pinned by `tests/explain_golden.rs` and CI.

use crate::plan::{plan, Plan, Query};
use crate::QueryError;
use swim_catalog::Catalog;
use swim_report::doc::KeyValueBlock;
use swim_report::render::Table;
use swim_report::{markdown, Block, Report, Section};
use swim_store::Store;

/// Three-valued zone-map verdict counts over one pruning level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VerdictCounts {
    /// Proven empty of matches: never read.
    pub never: usize,
    /// Proven to match entirely: read with the row filter skipped.
    pub always: usize,
    /// Undecided: read and row-filtered.
    pub maybe: usize,
}

impl VerdictCounts {
    /// Verdicts of a chunk-level [`Plan`].
    pub fn of_plan(p: &Plan) -> VerdictCounts {
        let always = p.selected.iter().filter(|&&i| p.full_match[i]).count();
        VerdictCounts {
            never: p.chunks_skipped(),
            always,
            maybe: p.selected.len() - always,
        }
    }

    /// Everything the planner looked at.
    pub fn total(&self) -> usize {
        self.never + self.always + self.maybe
    }

    /// What execution would read (`always + maybe`) — the number that
    /// must match `--profile`'s decode counters.
    pub fn scanned(&self) -> usize {
        self.always + self.maybe
    }

    fn add(&mut self, other: VerdictCounts) {
        self.never += other.never;
        self.always += other.always;
        self.maybe += other.maybe;
    }
}

/// Chunk-level verdicts for one store (the single `--trace` target, or
/// one opened catalog shard).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreExplain {
    /// Display label (file name for catalog shards).
    pub label: String,
    /// Store format version (v1 prunes on submit only).
    pub version: u16,
    /// Jobs in the store.
    pub jobs: u64,
    /// Chunk verdict counts.
    pub verdicts: VerdictCounts,
}

/// A planned-but-not-executed query: plan tree plus verdict counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Explain {
    /// Plan tree as `(step, detail)` pairs, top-down.
    pub steps: Vec<(String, String)>,
    /// Shard-level verdicts (federated targets only). `never` shards
    /// were not even opened; their chunks appear nowhere below.
    pub shards: Option<VerdictCounts>,
    /// Per-store chunk verdicts, in target order.
    pub stores: Vec<StoreExplain>,
}

impl Explain {
    /// Chunk verdicts summed over every (opened) store.
    pub fn chunk_verdicts(&self) -> VerdictCounts {
        let mut total = VerdictCounts::default();
        for store in &self.stores {
            total.add(store.verdicts);
        }
        total
    }

    /// Build the report [`Section`] shared by the text and Markdown
    /// renderers.
    pub fn to_section(&self, title: impl Into<String>) -> Section {
        let mut section = Section::new(title);
        let key_width = self
            .steps
            .iter()
            .map(|(step, _)| step.len())
            .max()
            .unwrap_or(0);
        section.push(Block::KeyValue(KeyValueBlock::new(
            self.steps
                .iter()
                .map(|(step, detail)| (step.clone(), detail.clone()))
                .collect(),
            key_width,
        )));
        if let Some(shards) = &self.shards {
            let mut table = Table::new(vec!["never", "always", "maybe", "opened"]);
            table.row(vec![
                shards.never.to_string(),
                shards.always.to_string(),
                shards.maybe.to_string(),
                shards.scanned().to_string(),
            ]);
            section.captioned_table("\nshard verdicts (manifest zone maps)", table);
        }
        let mut table = Table::new(vec![
            "store", "version", "jobs", "never", "always", "maybe", "scanned",
        ]);
        for store in &self.stores {
            table.row(vec![
                store.label.clone(),
                format!("v{}", store.version),
                store.jobs.to_string(),
                store.verdicts.never.to_string(),
                store.verdicts.always.to_string(),
                store.verdicts.maybe.to_string(),
                store.verdicts.scanned().to_string(),
            ]);
        }
        if self.stores.len() > 1 {
            let total = self.chunk_verdicts();
            table.row(vec![
                "(total)".to_owned(),
                String::new(),
                self.stores.iter().map(|s| s.jobs).sum::<u64>().to_string(),
                total.never.to_string(),
                total.always.to_string(),
                total.maybe.to_string(),
                total.scanned().to_string(),
            ]);
        }
        section.captioned_table(
            "\nchunk verdicts (zone maps; scanned = always + maybe)",
            table,
        );
        let total = self.chunk_verdicts();
        section.prose(format!(
            "\nexecution would decode {} of {} chunks ({} skipped, {} full-match); \
             nothing was executed\n",
            total.scanned(),
            total.total(),
            total.never,
            total.always,
        ));
        section
    }

    /// Aligned-text rendering (the CLI default; golden-pinned).
    pub fn render_text(&self, title: &str) -> String {
        self.to_section(title).render_text()
    }

    /// Markdown rendering through the report document model.
    pub fn render_markdown(&self, title: &str) -> String {
        let mut report = Report::new(title);
        report.push(self.to_section(title));
        markdown::render_report(&report)
    }

    /// One JSON object with fixed key order (byte-deterministic).
    pub fn render_json(&self) -> String {
        fn escape(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' | '\\' => {
                        out.push('\\');
                        out.push(c);
                    }
                    _ => out.push(c),
                }
            }
            out
        }
        fn verdicts(v: &VerdictCounts) -> String {
            format!(
                "{{\"never\":{},\"always\":{},\"maybe\":{},\"scanned\":{}}}",
                v.never,
                v.always,
                v.maybe,
                v.scanned()
            )
        }
        let mut out = String::from("{\"steps\":[");
        for (i, (step, detail)) in self.steps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[\"{}\",\"{}\"]", escape(step), escape(detail)));
        }
        out.push_str("],\"shards\":");
        match &self.shards {
            Some(shards) => out.push_str(&verdicts(shards)),
            None => out.push_str("null"),
        }
        out.push_str(",\"stores\":[");
        for (i, store) in self.stores.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"label\":\"{}\",\"version\":{},\"jobs\":{},\"verdicts\":{}}}",
                escape(&store.label),
                store.version,
                store.jobs,
                verdicts(&store.verdicts)
            ));
        }
        out.push_str(&format!(
            "],\"chunks\":{}}}",
            verdicts(&self.chunk_verdicts())
        ));
        out
    }
}

/// The plan-tree steps shared by both targets; the caller appends its
/// own `scan` step.
fn plan_steps(query: &Query) -> Vec<(String, String)> {
    let mut steps = Vec::new();
    if let Some(limit) = query.limit {
        steps.push(("limit".to_owned(), format!("{limit} rows")));
    }
    if let Some(order) = query.order_by {
        steps.push((
            "order by".to_owned(),
            format!(
                "output column {}{}",
                order.column + 1,
                if order.descending {
                    ", descending"
                } else {
                    ", ascending"
                }
            ),
        ));
    }
    steps.push((
        "aggregate".to_owned(),
        query
            .aggregates
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    ));
    steps.push((
        "group by".to_owned(),
        if query.group_by.is_empty() {
            "(one global group)".to_owned()
        } else {
            query
                .group_by
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        },
    ));
    steps.push((
        "filter".to_owned(),
        if query.predicate == crate::Pred::True {
            "(none - every row matches)".to_owned()
        } else {
            query.predicate.to_string()
        },
    ));
    steps
}

/// Explain a query against one store. Validates and plans; reads only
/// the footer the store was opened with — never a chunk.
pub fn explain_store(store: &Store, label: &str, query: &Query) -> Result<Explain, QueryError> {
    query.validate()?;
    let p = plan(store, query);
    let mut steps = plan_steps(query);
    steps.push((
        "scan".to_owned(),
        format!(
            "store {} (format v{}, {} jobs, {} chunks)",
            label,
            store.format_version(),
            store.job_count(),
            store.chunk_count()
        ),
    ));
    Ok(Explain {
        steps,
        shards: None,
        stores: vec![StoreExplain {
            label: label.to_owned(),
            version: store.format_version(),
            jobs: store.job_count(),
            verdicts: VerdictCounts::of_plan(&p),
        }],
    })
}

/// Explain a federated query against a catalog: shard verdicts from the
/// manifest zone maps, then chunk verdicts for each non-`Never` shard
/// (whose footer is opened, but no chunk decoded).
pub fn explain_catalog(catalog: &Catalog, query: &Query) -> Result<Explain, QueryError> {
    use crate::Tri;
    query.validate()?;
    let mut shard_counts = VerdictCounts::default();
    let mut stores = Vec::new();
    for (idx, entry) in catalog.shards().iter().enumerate() {
        match query.predicate.zone_verdict(&entry.zone) {
            Tri::Never => {
                shard_counts.never += 1;
                continue;
            }
            Tri::Always => shard_counts.always += 1,
            Tri::Maybe => shard_counts.maybe += 1,
        }
        let store = catalog.open_shard(idx)?;
        let p = plan(&store, query);
        stores.push(StoreExplain {
            label: entry.file.clone(),
            version: entry.store_version,
            jobs: entry.jobs,
            verdicts: VerdictCounts::of_plan(&p),
        });
    }
    let mut steps = plan_steps(query);
    steps.push((
        "scan".to_owned(),
        format!(
            "catalog generation {} ({} shards, {} jobs)",
            catalog.generation(),
            catalog.shard_count(),
            catalog.job_count()
        ),
    ));
    Ok(Explain {
        steps,
        shards: Some(shard_counts),
        stores,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::Aggregate;
    use crate::expr::{CmpOp, Col, Expr, Pred};
    use swim_store::{store_to_vec, StoreOptions};
    use swim_trace::trace::WorkloadKind;
    use swim_trace::{DataSize, Dur, JobBuilder, Timestamp, Trace};

    fn store() -> Store {
        // As in plan.rs: 100 jobs, 10 per chunk, submit = 100·i, input = i.
        let jobs = (0..100u64)
            .map(|i| {
                JobBuilder::new(i)
                    .submit(Timestamp::from_secs(i * 100))
                    .duration(Dur::from_secs(60))
                    .input(DataSize::from_bytes(i))
                    .map_task_time(Dur::from_secs(10))
                    .tasks(1, 0)
                    .build()
                    .unwrap()
            })
            .collect();
        let trace = Trace::new(WorkloadKind::Custom("explain".into()), 5, jobs).unwrap();
        Store::from_vec(store_to_vec(&trace, &StoreOptions { jobs_per_chunk: 10 })).unwrap()
    }

    fn query() -> Query {
        Query::new()
            .filter(Pred::cmp(Col::Input, CmpOp::Ge, 73))
            .group(Expr::col(Col::ReduceTasks))
            .select(Aggregate::Count)
            .order_by(1, true)
            .limit(5)
    }

    #[test]
    fn verdict_counts_match_the_plan() {
        let store = store();
        let explain = explain_store(&store, "mem", &query()).unwrap();
        let v = explain.chunk_verdicts();
        // input >= 73 → chunks 7 (maybe), 8, 9 (always); 0–6 never.
        assert_eq!(
            v,
            VerdictCounts {
                never: 7,
                always: 2,
                maybe: 1
            }
        );
        assert_eq!(v.scanned(), 3);
        assert_eq!(v.total(), 10);
        // Cross-check against actual execution.
        let out = crate::execute_serial(&store, &query()).unwrap();
        assert_eq!(v.scanned(), out.stats.chunks_scanned);
        assert_eq!(v.never, out.stats.chunks_skipped);
        assert_eq!(v.always, out.stats.chunks_full_match);
    }

    #[test]
    fn plan_tree_is_top_down_and_complete() {
        let explain = explain_store(&store(), "mem", &query()).unwrap();
        let steps: Vec<&str> = explain.steps.iter().map(|(s, _)| s.as_str()).collect();
        assert_eq!(
            steps,
            vec![
                "limit",
                "order by",
                "aggregate",
                "group by",
                "filter",
                "scan"
            ]
        );
        let text = explain.render_text("explain: demo");
        assert!(text.contains("limit    : 5 rows"), "{text}");
        assert!(text.contains("filter   : input >= 73"), "{text}");
        assert!(text.contains("scanned = always + maybe"), "{text}");
        assert!(text.contains("nothing was executed"), "{text}");
    }

    #[test]
    fn trivial_query_omits_optional_steps() {
        let explain =
            explain_store(&store(), "mem", &Query::new().select(Aggregate::Count)).unwrap();
        let steps: Vec<&str> = explain.steps.iter().map(|(s, _)| s.as_str()).collect();
        assert_eq!(steps, vec!["aggregate", "group by", "filter", "scan"]);
        assert_eq!(
            explain.chunk_verdicts(),
            VerdictCounts {
                never: 0,
                always: 10,
                maybe: 0
            }
        );
    }

    #[test]
    fn json_has_fixed_shape() {
        let json = explain_store(&store(), "mem", &query())
            .unwrap()
            .render_json();
        assert!(
            json.starts_with("{\"steps\":[[\"limit\",\"5 rows\"]"),
            "{json}"
        );
        assert!(json.contains("\"shards\":null"), "{json}");
        assert!(
            json.contains("\"verdicts\":{\"never\":7,\"always\":2,\"maybe\":1,\"scanned\":3}"),
            "{json}"
        );
        assert!(
            json.ends_with("\"chunks\":{\"never\":7,\"always\":2,\"maybe\":1,\"scanned\":3}}"),
            "{json}"
        );
    }

    #[test]
    fn invalid_queries_fail_before_planning() {
        assert!(matches!(
            explain_store(&store(), "mem", &Query::new()),
            Err(QueryError::Invalid(_))
        ));
    }
}
