//! Rendering a [`QueryOutput`] through `swim-report` blocks — the same
//! document model every other surface of the workspace renders with —
//! plus a minimal JSON form for machine consumers.

use crate::agg::AggValue;
use crate::exec::QueryOutput;
use swim_report::render::Table;
use swim_report::{markdown, Block, Report, Section};

/// Build the result table as a report block.
pub fn to_table(output: &QueryOutput) -> Table {
    let mut table = Table::new(output.columns.iter().map(String::as_str).collect());
    for row in &output.rows {
        table.row(row.cells().iter().map(render_value).collect());
    }
    table
}

/// Build a full report [`Section`]: the result table plus a pruning
/// summary line.
pub fn to_section(output: &QueryOutput, title: impl Into<String>) -> Section {
    let mut section = Section::new(title);
    section.table(to_table(output));
    section.push(Block::Prose(format!("\n{}\n", stats_line(output))));
    section
}

/// The one-line scan/pruning summary shown under tables and on stderr.
pub fn stats_line(output: &QueryOutput) -> String {
    let s = &output.stats;
    format!(
        "scanned {} of {} chunks ({} skipped via zone maps, {} full-match); \
         {} of {} rows matched",
        s.chunks_scanned,
        s.chunks_total,
        s.chunks_skipped,
        s.chunks_full_match,
        s.rows_matched,
        s.rows_scanned
    )
}

/// Render as the aligned-text table format (the CLI default; pinned by
/// the golden file in `testdata/golden-query.txt`).
pub fn render_text(output: &QueryOutput) -> String {
    format!("{}\n{}\n", to_table(output).render(), stats_line(output))
}

/// Render as Markdown through the report document model.
pub fn render_markdown(output: &QueryOutput, title: &str) -> String {
    let mut report = Report::new(title);
    report.push(to_section(output, title));
    markdown::render_report(&report)
}

/// Render as a single JSON object: `columns`, `rows` (arrays of numbers
/// or `null`), and `stats`. Key order is fixed, so output is
/// byte-deterministic.
pub fn render_json(output: &QueryOutput) -> String {
    let mut out = String::from("{\"columns\":[");
    for (i, c) in output.columns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        // Column labels come from expression Display: no quotes or
        // control characters to escape beyond backslash safety.
        for ch in c.chars() {
            match ch {
                '"' | '\\' => {
                    out.push('\\');
                    out.push(ch);
                }
                _ => out.push(ch),
            }
        }
        out.push('"');
    }
    out.push_str("],\"rows\":[");
    for (i, row) in output.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, v) in row.cells().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            match v {
                AggValue::Int(n) => out.push_str(&n.to_string()),
                AggValue::Float(f) => out.push_str(&f.to_string()),
                AggValue::Null => out.push_str("null"),
            }
        }
        out.push(']');
    }
    let s = &output.stats;
    out.push_str(&format!(
        "],\"stats\":{{\"chunks_total\":{},\"chunks_scanned\":{},\
         \"chunks_skipped\":{},\"chunks_full_match\":{},\
         \"rows_scanned\":{},\"rows_matched\":{}}}}}",
        s.chunks_total,
        s.chunks_scanned,
        s.chunks_skipped,
        s.chunks_full_match,
        s.rows_scanned,
        s.rows_matched
    ));
    out
}

fn render_value(v: &AggValue) -> String {
    match v {
        AggValue::Int(n) => n.to_string(),
        // Floats print with a decimal point even when integral, so a
        // reader can tell `avg` columns from exact counts at a glance.
        AggValue::Float(f) if f.fract() == 0.0 && f.abs() < 1e15 => format!("{f:.1}"),
        AggValue::Float(f) => f.to_string(),
        AggValue::Null => "-".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecStats, Row};

    fn output() -> QueryOutput {
        QueryOutput {
            columns: vec!["submit/3600".into(), "count".into(), "avg(duration)".into()],
            rows: vec![
                Row {
                    key: vec![0],
                    values: vec![AggValue::Int(3), AggValue::Float(12.5)],
                },
                Row {
                    key: vec![2],
                    values: vec![AggValue::Int(0), AggValue::Null],
                },
            ],
            stats: ExecStats {
                chunks_total: 4,
                chunks_scanned: 2,
                chunks_skipped: 2,
                chunks_full_match: 1,
                rows_scanned: 20,
                rows_matched: 3,
            },
        }
    }

    #[test]
    fn text_table_aligns_and_reports_pruning() {
        let text = render_text(&output());
        assert!(text.contains("submit/3600  count  avg(duration)"), "{text}");
        assert!(text.contains("0            3      12.5"), "{text}");
        assert!(text.contains("2            0      -"), "{text}");
        assert!(
            text.contains("scanned 2 of 4 chunks (2 skipped via zone maps, 1 full-match)"),
            "{text}"
        );
    }

    #[test]
    fn json_is_stable_and_null_aware() {
        let json = render_json(&output());
        assert!(json.starts_with("{\"columns\":[\"submit/3600\",\"count\",\"avg(duration)\"]"));
        assert!(json.contains("[0,3,12.5]"), "{json}");
        assert!(json.contains("[2,0,null]"), "{json}");
        assert!(json.contains("\"chunks_skipped\":2"), "{json}");
    }

    #[test]
    fn markdown_contains_table_and_stats() {
        let md = render_markdown(&output(), "demo query");
        assert!(md.contains("demo query"));
        assert!(md.contains("zone maps"));
    }
}
