//! # swim-query
//!
//! A vectorized, columnar query engine over the `swim-store` trace
//! format — the paper's whole analysis battery (per-bin job counts, I/O
//! sums, duration percentiles) expressed as one typed surface:
//!
//! ```text
//! Query { predicate, group_by, aggregates, order_by, limit }
//! ```
//!
//! compiled against a store's footer into a physical plan and executed
//! over chunk-at-a-time numeric column projections. Three properties do
//! the heavy lifting:
//!
//! 1. **Zone-map pruning** — format v2 stores per-chunk `[min, max]`
//!    bounds for *all ten* numeric columns, and the planner interval-
//!    evaluates the predicate against them
//!    ([`Pred::zone_verdict`]), so chunks that cannot match
//!    are never read and chunks that match entirely skip the row filter.
//!    Version-1 files still work (their synthesized maps prune on submit
//!    only).
//! 2. **Vectorized execution** — chunks decode to
//!    [`swim_store::format::columns::NumericColumns`]; expressions
//!    evaluate column-at-a-time over borrowed slices, and names/paths are
//!    never decoded (they are not addressable from a query at all).
//! 3. **Deterministic parallelism** — workers claim chunk indices off a
//!    shared counter ([`swim_store::Store::par_fold_columns`]); every
//!    accumulator merge is exact and order-insensitive (counts, saturating
//!    `u64` sums, extrema, sorted-at-finalize percentile samples), and
//!    finalization sorts groups canonically, so [`execute`] and
//!    [`execute_serial`] return bit-identical results.
//!
//! ```
//! use swim_query::{execute, execute_serial, parse, Query};
//! use swim_store::{store_to_vec, Store, StoreOptions};
//! use swim_trace::trace::WorkloadKind;
//! use swim_trace::{DataSize, Dur, JobBuilder, Timestamp, Trace};
//!
//! // A day of jobs, one per minute, 64 MB in each.
//! let jobs = (0..1440u64)
//!     .map(|i| {
//!         JobBuilder::new(i)
//!             .submit(Timestamp::from_secs(i * 60))
//!             .duration(Dur::from_secs(30 + i % 240))
//!             .input(DataSize::from_mb(64))
//!             .map_task_time(Dur::from_secs(90))
//!             .tasks(2, 0)
//!             .build()
//!             .unwrap()
//!     })
//!     .collect();
//! let trace = Trace::new(WorkloadKind::Custom("demo".into()), 25, jobs).unwrap();
//! let store = Store::from_vec(store_to_vec(
//!     &trace,
//!     &StoreOptions { jobs_per_chunk: 60 },
//! ))
//! .unwrap();
//!
//! // Hourly job counts and I/O for the first six hours — Fig. 7's shape.
//! let mut query = Query::new()
//!     .filter(parse::parse_predicate("submit < 6h").unwrap())
//!     .group(swim_query::Expr::submit_hour());
//! for agg in parse::parse_aggregates("count, sum(total_io)").unwrap() {
//!     query = query.select(agg);
//! }
//! let out = execute(&store, &query).unwrap();
//! assert_eq!(out.rows.len(), 6);
//! assert_eq!(out.rows[0].values[0], swim_query::AggValue::Int(60));
//! // Chunks after hour six were never read …
//! assert!(out.stats.chunks_skipped > 0);
//! // … and the parallel result is bit-identical to the serial one.
//! assert_eq!(execute_serial(&store, &query).unwrap(), out);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod agg;
pub mod cli;
pub mod exec;
pub mod explain;
pub mod expr;
pub mod federated;
mod obs;
pub mod parse;
pub mod plan;
pub mod render;
pub mod session;

pub use agg::{AggValue, Aggregate};
pub use exec::{execute, execute_serial, ExecStats, QueryOutput, Row};
pub use explain::{explain_catalog, explain_store, Explain, StoreExplain, VerdictCounts};
pub use expr::{CmpOp, Col, Expr, Pred, Tri, Values};
pub use federated::{CatalogOutput, CatalogQuery};
pub use plan::{plan, OrderBy, Plan, Query};
pub use render::{render_json, render_markdown, render_text};
pub use session::{Session, SessionResult};

use std::fmt;
use swim_catalog::CatalogError;
use swim_store::StoreError;

/// Errors from planning or executing a query.
#[derive(Debug)]
#[non_exhaustive]
pub enum QueryError {
    /// The underlying store failed (I/O, corruption).
    Store(StoreError),
    /// The underlying catalog failed (manifest, shard I/O) during
    /// federated execution.
    Catalog(CatalogError),
    /// The query itself is malformed (empty select, bad percentile rank,
    /// order-by out of range, unparseable text).
    Invalid(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Store(e) => write!(f, "query store error: {e}"),
            QueryError::Catalog(e) => write!(f, "query catalog error: {e}"),
            QueryError::Invalid(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Store(e) => Some(e),
            QueryError::Catalog(e) => Some(e),
            QueryError::Invalid(_) => None,
        }
    }
}

impl From<StoreError> for QueryError {
    fn from(e: StoreError) -> Self {
        QueryError::Store(e)
    }
}

impl From<CatalogError> for QueryError {
    fn from(e: CatalogError) -> Self {
        QueryError::Catalog(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        use std::error::Error as _;
        let e = QueryError::Invalid("nope".into());
        assert!(e.to_string().contains("nope"));
        assert!(e.source().is_none());
        let e = QueryError::from(StoreError::Truncated { context: "x" });
        assert!(e.to_string().contains("x"));
        assert!(e.source().is_some());
        let e = QueryError::from(CatalogError::Invalid("zero shards".into()));
        assert!(e.to_string().contains("zero shards"));
        assert!(e.source().is_some());
    }
}
