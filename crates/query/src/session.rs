//! A reusable query session: one open data source (a `.swim` store file
//! or a `swim-catalog` directory) plus the execution path the
//! `swim-query` CLI, `swim-catalog query`, and the `swim-serve` server
//! all share.
//!
//! The CLI used to own this glue — open the source, dispatch
//! serial/parallel execution, format the stderr scan summary. Splitting
//! it into [`Session`] means a resident server process answers requests
//! through *exactly* the byte-for-byte code path the one-shot binaries
//! use, so goldens pinned against the CLI also pin the server.
//!
//! A [`SessionResult`] carries the typed [`QueryOutput`] (render it in
//! any format), the human scan/pruning summary line, and the catalog
//! generation the result was computed against (`None` for plain store
//! files). Results are plain data — `Clone + PartialEq` — so they can be
//! cached and compared bit-for-bit against re-executions.

use crate::federated::CatalogQuery as _;
use crate::{execute, execute_serial, explain_catalog, explain_store, render};
use crate::{Explain, Query, QueryError, QueryOutput};
use swim_catalog::{Catalog, CatalogError};
use swim_store::{Store, StoreError};

/// The open data source behind a session.
enum Source {
    /// A single `.swim` store file.
    Store {
        /// Path the store was opened from (used by explain).
        path: String,
        /// The open store.
        store: Store,
    },
    /// A `swim-catalog` dataset directory (federated execution).
    Catalog(Catalog),
}

/// One open data source and the shared execution path over it.
///
/// Sessions are read-only: every method takes `&self`, and both the
/// store and catalog engines execute with interior synchronization, so
/// a `Session` can be shared across server worker threads behind an
/// `Arc`.
pub struct Session {
    source: Source,
}

/// The result of executing a query through a [`Session`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionResult {
    /// The query output (rows, stats) — render with [`crate::cli`] or
    /// [`crate::render`].
    pub output: QueryOutput,
    /// The scan/pruning summary line the CLIs print to stderr,
    /// byte-identical to the pre-session binaries:
    /// `… (catalog generation G, N jobs)` or `… (store vV, N jobs)`.
    pub summary: String,
    /// Catalog generation the result was computed against; `None` for
    /// plain store files.
    pub generation: Option<u64>,
}

impl Session {
    /// Open a `.swim` store file. The raw [`StoreError`] is returned so
    /// callers can keep printing `error: open {path}: {e}` unchanged.
    pub fn open_store(path: &str) -> Result<Session, StoreError> {
        let store = Store::open(path)?;
        Ok(Session {
            source: Source::Store {
                path: path.to_owned(),
                store,
            },
        })
    }

    /// Open a `swim-catalog` dataset directory. The raw
    /// [`CatalogError`] is returned so callers can keep printing
    /// `error: open {dir}: {e}` unchanged.
    pub fn open_catalog(dir: &str) -> Result<Session, CatalogError> {
        Ok(Session {
            source: Source::Catalog(Catalog::open(dir)?),
        })
    }

    /// Wrap an already-open catalog (the server opens catalogs itself
    /// to control generation refresh).
    pub fn from_catalog(catalog: Catalog) -> Session {
        Session {
            source: Source::Catalog(catalog),
        }
    }

    /// The open catalog, if this session is backed by one.
    pub fn catalog(&self) -> Option<&Catalog> {
        match &self.source {
            Source::Catalog(c) => Some(c),
            Source::Store { .. } => None,
        }
    }

    /// Catalog generation this session reads at (`None` for stores).
    pub fn generation(&self) -> Option<u64> {
        self.catalog().map(Catalog::generation)
    }

    /// Total jobs visible to this session.
    pub fn job_count(&self) -> u64 {
        match &self.source {
            Source::Store { store, .. } => store.job_count(),
            Source::Catalog(c) => c.job_count(),
        }
    }

    /// Execute `query`, serially when `serial` is set. Parallel and
    /// serial execution are bit-identical; the flag exists for
    /// benchmarking and debugging.
    pub fn execute(&self, query: &Query, serial: bool) -> Result<SessionResult, QueryError> {
        match &self.source {
            Source::Store { store, .. } => {
                let output = if serial {
                    execute_serial(store, query)?
                } else {
                    execute(store, query)?
                };
                let summary = format!(
                    "{} (store v{}, {} jobs)",
                    render::stats_line(&output),
                    store.format_version(),
                    store.job_count()
                );
                Ok(SessionResult {
                    output,
                    summary,
                    generation: None,
                })
            }
            Source::Catalog(catalog) => {
                let out = if serial {
                    catalog.execute_serial(query)?
                } else {
                    catalog.execute(query)?
                };
                let summary = format!(
                    "{} (catalog generation {}, {} jobs)",
                    out.stats_line(),
                    catalog.generation(),
                    catalog.job_count()
                );
                Ok(SessionResult {
                    output: out.output,
                    summary,
                    generation: Some(catalog.generation()),
                })
            }
        }
    }

    /// Explain `query` against this source without executing it.
    pub fn explain(&self, query: &Query) -> Result<Explain, QueryError> {
        match &self.source {
            Source::Store { path, store } => explain_store(store, path, query),
            Source::Catalog(catalog) => explain_catalog(catalog, query),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use std::sync::atomic::{AtomicU64, Ordering};
    use swim_store::{store_to_vec, StoreOptions};
    use swim_trace::trace::WorkloadKind;
    use swim_trace::{DataSize, Dur, JobBuilder, Timestamp, Trace};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("swim-session-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn demo_trace(n: u64) -> Trace {
        let jobs = (0..n)
            .map(|i| {
                JobBuilder::new(i)
                    .submit(Timestamp::from_secs(i * 60))
                    .duration(Dur::from_secs(30 + i % 240))
                    .input(DataSize::from_mb(64))
                    .map_task_time(Dur::from_secs(90))
                    .tasks(2, 0)
                    .build()
                    .unwrap()
            })
            .collect();
        Trace::new(WorkloadKind::Custom("demo".into()), 25, jobs).unwrap()
    }

    fn count_query() -> Query {
        let mut q = Query::new();
        for agg in parse::parse_aggregates("count,sum(total_io)").unwrap() {
            q = q.select(agg);
        }
        q
    }

    #[test]
    fn store_session_matches_direct_execution() {
        let dir = temp_dir("store");
        let path = dir.join("demo.swim");
        let bytes = store_to_vec(&demo_trace(120), &StoreOptions { jobs_per_chunk: 32 });
        std::fs::write(&path, &bytes).unwrap();
        let path = path.to_string_lossy().into_owned();

        let session = Session::open_store(&path).unwrap();
        let q = count_query();
        let got = session.execute(&q, false).unwrap();
        let serial = session.execute(&q, true).unwrap();
        assert_eq!(got, serial, "parallel and serial must be bit-identical");
        assert_eq!(got.generation, None);
        assert_eq!(session.generation(), None);
        assert_eq!(session.job_count(), 120);

        let store = Store::open(&path).unwrap();
        let direct = execute(&store, &q).unwrap();
        assert_eq!(got.output, direct);
        assert_eq!(
            got.summary,
            format!(
                "{} (store v{}, {} jobs)",
                render::stats_line(&direct),
                store.format_version(),
                store.job_count()
            )
        );
        assert!(session.explain(&q).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn catalog_session_reports_generation() {
        let dir = temp_dir("catalog");
        let cat_dir = dir.join("cat.d");
        let mut catalog = Catalog::init(&cat_dir).unwrap();
        catalog
            .ingest_trace(&demo_trace(90), &swim_catalog::CatalogOptions::default())
            .unwrap();
        let session = Session::open_catalog(&cat_dir.to_string_lossy()).unwrap();
        let q = count_query();
        let got = session.execute(&q, false).unwrap();
        assert_eq!(got.generation, Some(1));
        assert!(got.summary.contains("(catalog generation 1, 90 jobs)"));
        assert!(session.catalog().is_some());
        assert_eq!(session.generation(), Some(1));

        let wrapped = Session::from_catalog(Catalog::open(&cat_dir).unwrap());
        assert_eq!(wrapped.execute(&q, true).unwrap(), got);
        assert!(wrapped.explain(&q).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_errors_are_raw() {
        assert!(Session::open_store("/no/such/file.swim").is_err());
        assert!(Session::open_catalog("/no/such/dir.d").is_err());
    }
}
