//! The logical [`Query`] and its physical [`Plan`].
//!
//! Planning is pure pruning: the predicate's zone-map verdict
//! ([`crate::expr::Pred::zone_verdict`]) classifies every chunk as
//! *skip* (no job can match — never read), *filter* (read and apply the
//! row mask), or *full* (every job matches — read, skip the mask). The
//! store's footer index makes this O(chunks) with zero I/O.

use crate::agg::Aggregate;
use crate::expr::{Expr, Pred, Tri};
use crate::QueryError;
use swim_store::Store;

/// A typed query over one store: filter → group → aggregate → order/limit.
///
/// The projection is implicit: group-by expressions become the leading
/// output columns, aggregates the rest. Only the ten numeric columns are
/// ever decoded — names and path lists are not addressable here, so no
/// query pays for them.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Row filter ([`Pred::True`] keeps everything).
    pub predicate: Pred,
    /// Group keys; empty means one global group (aggregates over all
    /// matching rows, always yielding exactly one row).
    pub group_by: Vec<Expr>,
    /// Output aggregates (at least one).
    pub aggregates: Vec<Aggregate>,
    /// Optional ordering over output columns; rows default to ascending
    /// lexicographic group-key order.
    pub order_by: Option<OrderBy>,
    /// Optional row-count cap, applied after ordering.
    pub limit: Option<usize>,
}

/// Ordering specification: an output column (group keys first, then
/// aggregates, zero-based) and a direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderBy {
    /// Zero-based output column index.
    pub column: usize,
    /// `true` for descending.
    pub descending: bool,
}

impl Query {
    /// Start a query that counts every job.
    pub fn new() -> Query {
        Query {
            predicate: Pred::True,
            group_by: Vec::new(),
            aggregates: Vec::new(),
            order_by: None,
            limit: None,
        }
    }

    /// Set the row filter.
    pub fn filter(mut self, predicate: Pred) -> Query {
        self.predicate = predicate;
        self
    }

    /// Append a group-by key.
    pub fn group(mut self, key: Expr) -> Query {
        self.group_by.push(key);
        self
    }

    /// Append an output aggregate.
    pub fn select(mut self, agg: Aggregate) -> Query {
        self.aggregates.push(agg);
        self
    }

    /// Order by an output column (zero-based; group keys come first).
    pub fn order_by(mut self, column: usize, descending: bool) -> Query {
        self.order_by = Some(OrderBy { column, descending });
        self
    }

    /// Cap the number of output rows (after ordering).
    pub fn limit(mut self, n: usize) -> Query {
        self.limit = Some(n);
        self
    }

    /// Output column labels: group keys, then aggregates.
    pub fn column_labels(&self) -> Vec<String> {
        self.group_by
            .iter()
            .map(|e| e.to_string())
            .chain(self.aggregates.iter().map(|a| a.to_string()))
            .collect()
    }

    /// Validate the query shape before execution.
    pub fn validate(&self) -> Result<(), QueryError> {
        if self.aggregates.is_empty() {
            return Err(QueryError::Invalid(
                "query selects no aggregates (try `count`)".into(),
            ));
        }
        for agg in &self.aggregates {
            if let Aggregate::Percentile(_, p) = agg {
                if !(0.0..=1.0).contains(p) || !p.is_finite() {
                    return Err(QueryError::Invalid(format!(
                        "percentile rank {p} outside [0, 1]"
                    )));
                }
            }
        }
        let columns = self.group_by.len() + self.aggregates.len();
        if let Some(o) = self.order_by {
            if o.column >= columns {
                return Err(QueryError::Invalid(format!(
                    "order-by column {} out of range (query has {columns} output columns)",
                    o.column
                )));
            }
        }
        Ok(())
    }
}

impl Default for Query {
    fn default() -> Query {
        Query::new()
    }
}

/// The physical plan: which chunks to read, and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Chunk indices to scan, in file order.
    pub selected: Vec<usize>,
    /// Indexed by *chunk index*: `true` when the zone verdict proved the
    /// whole chunk matches, so execution skips the row filter for it.
    pub full_match: Vec<bool>,
    /// Total chunks in the store (scanned + skipped).
    pub chunks_total: usize,
}

impl Plan {
    /// Chunks the zone maps eliminated without reading a byte.
    pub fn chunks_skipped(&self) -> usize {
        self.chunks_total - self.selected.len()
    }
}

/// Prune the store's chunks against the query predicate.
pub fn plan(store: &Store, query: &Query) -> Plan {
    let zones = store.zone_maps();
    let mut selected = Vec::with_capacity(zones.len());
    let mut full_match = vec![false; zones.len()];
    let (mut never, mut always, mut maybe) = (0u64, 0u64, 0u64);
    for (idx, zone) in zones.iter().enumerate() {
        match query.predicate.zone_verdict(zone) {
            Tri::Never => never += 1,
            Tri::Maybe => {
                maybe += 1;
                selected.push(idx);
            }
            Tri::Always => {
                always += 1;
                full_match[idx] = true;
                selected.push(idx);
            }
        }
    }
    crate::obs::VERDICT_NEVER.add(never);
    crate::obs::VERDICT_ALWAYS.add(always);
    crate::obs::VERDICT_MAYBE.add(maybe);
    Plan {
        selected,
        full_match,
        chunks_total: zones.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Col};
    use swim_store::{store_to_vec, StoreOptions};
    use swim_trace::trace::WorkloadKind;
    use swim_trace::{DataSize, Dur, JobBuilder, Timestamp, Trace};

    fn store() -> Store {
        // 100 jobs, 10 per chunk; submit = 100·i so chunk k covers
        // [1000k, 1000k + 900]; input = i bytes.
        let jobs = (0..100u64)
            .map(|i| {
                JobBuilder::new(i)
                    .submit(Timestamp::from_secs(i * 100))
                    .duration(Dur::from_secs(60))
                    .input(DataSize::from_bytes(i))
                    .map_task_time(Dur::from_secs(10))
                    .tasks(1, 0)
                    .build()
                    .unwrap()
            })
            .collect();
        let trace = Trace::new(WorkloadKind::Custom("plan".into()), 5, jobs).unwrap();
        Store::from_vec(store_to_vec(&trace, &StoreOptions { jobs_per_chunk: 10 })).unwrap()
    }

    #[test]
    fn planner_skips_on_non_submit_columns() {
        let store = store();
        // input >= 73: only chunks 7, 8, 9 can contain matches.
        let q = Query::new()
            .filter(Pred::cmp(Col::Input, CmpOp::Ge, 73))
            .select(Aggregate::Count);
        let p = plan(&store, &q);
        assert_eq!(p.chunks_total, 10);
        assert_eq!(p.selected, vec![7, 8, 9]);
        assert_eq!(p.chunks_skipped(), 7);
        // Chunks 8 and 9 match fully; 7 needs the row filter.
        assert!(!p.full_match[7]);
        assert!(p.full_match[8] && p.full_match[9]);
    }

    #[test]
    fn trivial_predicate_selects_everything_as_full_match() {
        let store = store();
        let p = plan(&store, &Query::new().select(Aggregate::Count));
        assert_eq!(p.selected.len(), 10);
        assert!(p.full_match.iter().all(|&f| f));
        assert_eq!(p.chunks_skipped(), 0);
    }

    #[test]
    fn impossible_predicate_skips_every_chunk() {
        let store = store();
        let q = Query::new()
            .filter(Pred::cmp(Col::Duration, CmpOp::Gt, 60))
            .select(Aggregate::Count);
        let p = plan(&store, &q);
        assert!(p.selected.is_empty());
        assert_eq!(p.chunks_skipped(), 10);
    }

    #[test]
    fn validation_catches_bad_shapes() {
        assert!(Query::new().validate().is_err()); // no aggregates
        assert!(Query::new()
            .select(Aggregate::Percentile(Expr::col(Col::Duration), 1.5))
            .validate()
            .is_err());
        assert!(Query::new()
            .select(Aggregate::Count)
            .order_by(3, false)
            .validate()
            .is_err());
        assert!(Query::new()
            .select(Aggregate::Count)
            .group(Expr::submit_hour())
            .order_by(1, true)
            .validate()
            .is_ok());
    }
}
