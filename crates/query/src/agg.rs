//! Aggregate functions and their mergeable accumulators.
//!
//! Every accumulator is exact over `u64` (counts, saturating sums,
//! extrema, collected samples), so partial states can be merged in *any*
//! order and still finalize to identical bits — the property that makes
//! serial and parallel execution byte-for-byte interchangeable.

use crate::expr::Expr;
use std::fmt;

/// An aggregate over the rows of one group.
#[derive(Debug, Clone, PartialEq)]
pub enum Aggregate {
    /// Number of matching rows.
    Count,
    /// Saturating sum of the expression.
    Sum(Expr),
    /// Minimum of the expression.
    Min(Expr),
    /// Maximum of the expression.
    Max(Expr),
    /// Mean of the expression (exact `u64` sum, one final division).
    Avg(Expr),
    /// Nearest-rank percentile of the expression, `p` in `[0, 1]` —
    /// exactly `swim_core::stats::Ecdf::quantile`'s rank rule, so query
    /// results line up with the paper's CDF tables.
    Percentile(Expr, f64),
}

impl Aggregate {
    /// The expression this aggregate reads, if any.
    pub fn input(&self) -> Option<&Expr> {
        match self {
            Aggregate::Count => None,
            Aggregate::Sum(e)
            | Aggregate::Min(e)
            | Aggregate::Max(e)
            | Aggregate::Avg(e)
            | Aggregate::Percentile(e, _) => Some(e),
        }
    }

    /// Fresh accumulator state.
    pub(crate) fn new_state(&self) -> AggState {
        match self {
            Aggregate::Count => AggState::Count(0),
            Aggregate::Sum(_) => AggState::Sum(0),
            Aggregate::Min(_) => AggState::Min(None),
            Aggregate::Max(_) => AggState::Max(None),
            Aggregate::Avg(_) => AggState::Avg { sum: 0, n: 0 },
            Aggregate::Percentile(..) => AggState::Samples(Vec::new()),
        }
    }
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Aggregate::Count => write!(f, "count"),
            Aggregate::Sum(e) => write!(f, "sum({e})"),
            Aggregate::Min(e) => write!(f, "min({e})"),
            Aggregate::Max(e) => write!(f, "max({e})"),
            Aggregate::Avg(e) => write!(f, "avg({e})"),
            Aggregate::Percentile(e, p) => write!(f, "p{}({e})", (p * 100.0).round() as u32),
        }
    }
}

/// One finalized aggregate value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggValue {
    /// Exact integer result (count, sum, min, max, group keys).
    Int(u64),
    /// Real-valued result (avg, percentile).
    Float(f64),
    /// Aggregate of an empty group (min/max/avg/percentile of no rows).
    Null,
}

impl AggValue {
    /// Total order for `ORDER BY`: `Null` first, then numerically.
    pub fn order_key(&self) -> (u8, f64) {
        match self {
            AggValue::Null => (0, 0.0),
            AggValue::Int(v) => (1, *v as f64),
            AggValue::Float(v) => (1, *v),
        }
    }
}

impl fmt::Display for AggValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggValue::Int(v) => write!(f, "{v}"),
            AggValue::Float(v) => write!(f, "{v}"),
            AggValue::Null => write!(f, "-"),
        }
    }
}

/// Mergeable accumulator state for one aggregate of one group.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum AggState {
    Count(u64),
    Sum(u64),
    Min(Option<u64>),
    Max(Option<u64>),
    Avg { sum: u64, n: u64 },
    Samples(Vec<u64>),
}

impl AggState {
    /// Fold one row's value in (`v` is ignored by `Count`).
    #[inline]
    pub(crate) fn update(&mut self, v: u64) {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum(s) => *s = s.saturating_add(v),
            AggState::Min(m) => *m = Some(m.map_or(v, |m| m.min(v))),
            AggState::Max(m) => *m = Some(m.map_or(v, |m| m.max(v))),
            AggState::Avg { sum, n } => {
                *sum = sum.saturating_add(v);
                *n += 1;
            }
            AggState::Samples(s) => s.push(v),
        }
    }

    /// Merge another partial state in (same aggregate, same group).
    pub(crate) fn merge(&mut self, other: AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum(a), AggState::Sum(b)) => *a = a.saturating_add(b),
            (AggState::Min(a), AggState::Min(b)) => {
                *a = match (*a, b) {
                    (Some(x), Some(y)) => Some(x.min(y)),
                    (x, y) => x.or(y),
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                *a = match (*a, b) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (x, y) => x.or(y),
                }
            }
            (AggState::Avg { sum, n }, AggState::Avg { sum: s2, n: n2 }) => {
                *sum = sum.saturating_add(s2);
                *n += n2;
            }
            (AggState::Samples(a), AggState::Samples(b)) => a.extend(b),
            // lint: allow(panic, "merge partners are built from the same aggregate list, so variants always pair up")
            _ => unreachable!("merged states always come from the same aggregate list"),
        }
    }

    /// Finalize into a value. `agg` supplies the percentile rank.
    pub(crate) fn finalize(self, agg: &Aggregate) -> AggValue {
        match self {
            AggState::Count(n) => AggValue::Int(n),
            AggState::Sum(s) => AggValue::Int(s),
            AggState::Min(m) | AggState::Max(m) => m.map_or(AggValue::Null, AggValue::Int),
            AggState::Avg { sum, n } => {
                if n == 0 {
                    AggValue::Null
                } else {
                    AggValue::Float(sum as f64 / n as f64)
                }
            }
            AggState::Samples(mut s) => {
                let Aggregate::Percentile(_, p) = agg else {
                    // lint: allow(panic, "Samples state is only ever constructed for percentile aggregates")
                    unreachable!("sample state belongs to a percentile aggregate")
                };
                if s.is_empty() {
                    return AggValue::Null;
                }
                // Nearest-rank, identical to Ecdf::quantile: samples are
                // sorted (order of arrival is irrelevant), rank =
                // ceil(p·n) clamped to [1, n].
                s.sort_unstable();
                let p = p.clamp(0.0, 1.0);
                let idx = if p == 0.0 {
                    0
                } else {
                    ((p * s.len() as f64).ceil() as usize).clamp(1, s.len()) - 1
                };
                AggValue::Float(s[idx] as f64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Col;

    #[test]
    fn labels() {
        assert_eq!(Aggregate::Count.to_string(), "count");
        assert_eq!(
            Aggregate::Sum(Expr::col(Col::Input)).to_string(),
            "sum(input)"
        );
        assert_eq!(
            Aggregate::Percentile(Expr::col(Col::Duration), 0.5).to_string(),
            "p50(duration)"
        );
    }

    #[test]
    fn merge_is_order_insensitive() {
        let agg = Aggregate::Percentile(Expr::col(Col::Duration), 0.5);
        let values = [5u64, 1, 9, 3, 3, 7];
        // Split 2|4 merged forwards, and 4|2 merged backwards.
        let run = |first: &[u64], second: &[u64], swap: bool| {
            let mut a = agg.new_state();
            for &v in first {
                a.update(v);
            }
            let mut b = agg.new_state();
            for &v in second {
                b.update(v);
            }
            if swap {
                b.merge(a);
                b.finalize(&agg)
            } else {
                a.merge(b);
                a.finalize(&agg)
            }
        };
        let x = run(&values[..2], &values[2..], false);
        let y = run(&values[..2], &values[2..], true);
        assert_eq!(x, y);
        assert_eq!(x, AggValue::Float(3.0)); // rank ceil(0.5*6)=3 → sorted[2]
    }

    #[test]
    fn percentile_matches_ecdf_rank_rule() {
        // Mirrors Ecdf::quantile: rank = ceil(p*n) clamped to [1, n].
        let agg = |p| Aggregate::Percentile(Expr::col(Col::Duration), p);
        let finalize = |p: f64, values: &[u64]| {
            let a = agg(p);
            let mut st = a.new_state();
            for &v in values {
                st.update(v);
            }
            st.finalize(&a)
        };
        assert_eq!(finalize(0.0, &[4, 2, 8]), AggValue::Float(2.0));
        assert_eq!(finalize(0.5, &[4, 2, 8]), AggValue::Float(4.0));
        assert_eq!(finalize(1.0, &[4, 2, 8]), AggValue::Float(8.0));
        assert_eq!(finalize(0.5, &[7]), AggValue::Float(7.0));
        assert_eq!(finalize(0.5, &[]), AggValue::Null);
    }

    #[test]
    fn merging_an_empty_state_is_the_identity_in_both_directions() {
        // The federation edge case: a shard with zero matching rows
        // contributes a fresh accumulator, which must not disturb a
        // populated one — whichever side of the merge it lands on.
        let aggs = [
            Aggregate::Count,
            Aggregate::Sum(Expr::col(Col::Input)),
            Aggregate::Min(Expr::col(Col::Input)),
            Aggregate::Max(Expr::col(Col::Input)),
            Aggregate::Avg(Expr::col(Col::Input)),
            Aggregate::Percentile(Expr::col(Col::Input), 0.9),
        ];
        for agg in &aggs {
            let mut populated = agg.new_state();
            for v in [3u64, 9, 1, 7] {
                populated.update(v);
            }
            let expected = populated.clone().finalize(agg);

            // populated ← empty
            let mut left = populated.clone();
            left.merge(agg.new_state());
            assert_eq!(left.finalize(agg), expected, "{agg}: populated ← empty");

            // empty ← populated
            let mut right = agg.new_state();
            right.merge(populated);
            assert_eq!(right.finalize(agg), expected, "{agg}: empty ← populated");

            // empty ← empty stays empty (Null / zero).
            let mut both = agg.new_state();
            both.merge(agg.new_state());
            assert_eq!(
                both.finalize(agg),
                agg.new_state().finalize(agg),
                "{agg}: empty ← empty"
            );
        }
    }

    #[test]
    fn avg_and_percentile_of_no_samples_finalize_to_null() {
        // The all-skipped-shard edge: a query whose every shard is
        // pruned finalizes fresh states — Avg and Percentile must yield
        // Null (never divide by zero or index an empty sample vector).
        for agg in [
            Aggregate::Avg(Expr::col(Col::Duration)),
            Aggregate::Percentile(Expr::col(Col::Duration), 0.0),
            Aggregate::Percentile(Expr::col(Col::Duration), 0.5),
            Aggregate::Percentile(Expr::col(Col::Duration), 1.0),
        ] {
            assert_eq!(agg.new_state().finalize(&agg), AggValue::Null, "{agg}");
        }
    }

    #[test]
    fn empty_group_finalizes_to_null_or_zero() {
        for (agg, expect) in [
            (Aggregate::Count, AggValue::Int(0)),
            (Aggregate::Sum(Expr::col(Col::Input)), AggValue::Int(0)),
            (Aggregate::Min(Expr::col(Col::Input)), AggValue::Null),
            (Aggregate::Max(Expr::col(Col::Input)), AggValue::Null),
            (Aggregate::Avg(Expr::col(Col::Input)), AggValue::Null),
        ] {
            assert_eq!(agg.new_state().finalize(&agg), expect, "{agg}");
        }
    }

    #[test]
    fn sum_saturates_like_datasize() {
        let agg = Aggregate::Sum(Expr::col(Col::Input));
        let mut a = agg.new_state();
        a.update(u64::MAX - 5);
        a.update(100);
        assert_eq!(a.finalize(&agg), AggValue::Int(u64::MAX));
    }
}
