//! Text syntax for queries — the `swim-query` CLI's `--select`,
//! `--where`, and `--group-by` arguments.
//!
//! ```text
//! expr      := term (('+' | '-') term)*
//! term      := factor (('*' | '/') factor)*
//! factor    := column | literal | '(' expr ')'
//! literal   := digits [kb|mb|gb|tb|pb | s|min|h|d|w]
//! column    := id | submit | duration | input | shuffle | output
//!            | map_time | reduce_time | map_tasks | reduce_tasks
//!            | total_io | total_task_time | total_tasks   (derived)
//! pred      := conj (('or' | '||') conj)*
//! conj      := unit (('and' | '&&') unit)*
//! unit      := ('not' | '!') unit | expr cmp expr | '(' pred ')'
//! cmp       := '<' | '<=' | '>' | '>=' | '==' | '!='
//! agg       := count | (sum|min|max|avg) '(' expr ')' | 'p'digits '(' expr ')'
//! selects   := agg (',' agg)*
//! groups    := expr (',' expr)*
//! ```
//!
//! Size suffixes are decimal (`1kb` = 1000 bytes, as
//! [`swim_trace::DataSize`]); time suffixes are seconds-based (`2h` =
//! 7200). `p50(duration)` is the nearest-rank median; `pN` accepts
//! integer percents 0–100.

use crate::agg::Aggregate;
use crate::expr::{CmpOp, Col, Expr, Pred};

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(u64),
    Symbol(&'static str),
}

fn lex(input: &str) -> Result<Vec<Token>, String> {
    let mut tokens = Vec::new();
    let mut chars = input.char_indices().peekable();
    while let Some(&(start, c)) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
            continue;
        }
        if c.is_ascii_digit() {
            let mut end = start;
            while let Some(&(i, d)) = chars.peek() {
                if d.is_ascii_digit() || d == '_' {
                    end = i + d.len_utf8();
                    chars.next();
                } else {
                    break;
                }
            }
            let digits: String = input[start..end].chars().filter(|&d| d != '_').collect();
            let value: u64 = digits
                .parse()
                .map_err(|_| format!("number {digits:?} overflows u64"))?;
            // Optional unit suffix, lexed as part of the number.
            let mut suffix = String::new();
            while let Some(&(_, d)) = chars.peek() {
                if d.is_ascii_alphabetic() {
                    suffix.push(d);
                    chars.next();
                } else {
                    break;
                }
            }
            let multiplier = match suffix.as_str() {
                "" => 1,
                "kb" => 1_000,
                "mb" => 1_000_000,
                "gb" => 1_000_000_000,
                "tb" => 1_000_000_000_000,
                "pb" => 1_000_000_000_000_000,
                "s" => 1,
                "min" => 60,
                "h" => 3_600,
                "d" => 86_400,
                "w" => 604_800,
                other => return Err(format!("unknown unit suffix {other:?} in {input:?}")),
            };
            let value = value
                .checked_mul(multiplier)
                .ok_or_else(|| format!("literal {}{suffix} overflows u64", digits))?;
            tokens.push(Token::Number(value));
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let mut end = start;
            while let Some(&(i, d)) = chars.peek() {
                if d.is_ascii_alphanumeric() || d == '_' {
                    end = i + d.len_utf8();
                    chars.next();
                } else {
                    break;
                }
            }
            tokens.push(Token::Ident(input[start..end].to_ascii_lowercase()));
            continue;
        }
        // Two-character symbols first.
        let rest = &input[start..];
        let two = ["<=", ">=", "==", "!=", "&&", "||"]
            .into_iter()
            .find(|s| rest.starts_with(s));
        if let Some(s) = two {
            chars.next();
            chars.next();
            tokens.push(Token::Symbol(s));
            continue;
        }
        let one = ["<", ">", "+", "-", "*", "/", "(", ")", ",", "!", "="]
            .into_iter()
            .find(|s| rest.starts_with(s));
        match one {
            Some("=") => return Err("use `==` for equality".into()),
            Some(s) => {
                chars.next();
                tokens.push(Token::Symbol(s));
            }
            None => return Err(format!("unexpected character {c:?} in {input:?}")),
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Parser, String> {
        Ok(Parser {
            tokens: lex(input)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn eat_symbol(&mut self, s: &str) -> bool {
        match self.peek() {
            Some(Token::Symbol(t)) if *t == s => {
                self.pos += 1;
                true
            }
            _ => false,
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        match self.peek() {
            Some(Token::Ident(w)) if w == word => {
                self.pos += 1;
                true
            }
            _ => false,
        }
    }

    fn expect_symbol(&mut self, s: &str) -> Result<(), String> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(format!("expected {s:?} at {}", self.where_am_i()))
        }
    }

    fn where_am_i(&self) -> String {
        match self.peek() {
            Some(Token::Ident(w)) => format!("`{w}`"),
            Some(Token::Number(n)) => format!("`{n}`"),
            Some(Token::Symbol(s)) => format!("`{s}`"),
            None => "end of input".into(),
        }
    }

    fn column(name: &str) -> Option<Expr> {
        let col = match name {
            "id" => Col::Id,
            "submit" => Col::Submit,
            "duration" => Col::Duration,
            "input" => Col::Input,
            "shuffle" => Col::Shuffle,
            "output" => Col::Output,
            "map_time" => Col::MapTime,
            "reduce_time" => Col::ReduceTime,
            "map_tasks" => Col::MapTasks,
            "reduce_tasks" => Col::ReduceTasks,
            "total_io" => return Some(Expr::total_io()),
            "total_task_time" => return Some(Expr::total_task_time()),
            "total_tasks" => return Some(Expr::total_tasks()),
            _ => return None,
        };
        Some(Expr::Col(col))
    }

    fn factor(&mut self) -> Result<Expr, String> {
        match self.peek().cloned() {
            Some(Token::Number(n)) => {
                self.pos += 1;
                Ok(Expr::Lit(n))
            }
            Some(Token::Ident(w)) => {
                let e = Self::column(&w)
                    .ok_or_else(|| format!("unknown column `{w}` (see --help for columns)"))?;
                self.pos += 1;
                Ok(e)
            }
            Some(Token::Symbol("(")) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            _ => Err(format!("expected an expression at {}", self.where_am_i())),
        }
    }

    fn term(&mut self) -> Result<Expr, String> {
        let mut e = self.factor()?;
        loop {
            if self.eat_symbol("*") {
                e = Expr::Mul(Box::new(e), Box::new(self.factor()?));
            } else if self.eat_symbol("/") {
                e = Expr::Div(Box::new(e), Box::new(self.factor()?));
            } else {
                return Ok(e);
            }
        }
    }

    fn expr(&mut self) -> Result<Expr, String> {
        let mut e = self.term()?;
        loop {
            if self.eat_symbol("+") {
                e = Expr::Add(Box::new(e), Box::new(self.term()?));
            } else if self.eat_symbol("-") {
                e = Expr::Sub(Box::new(e), Box::new(self.term()?));
            } else {
                return Ok(e);
            }
        }
    }

    fn cmp_op(&mut self) -> Option<CmpOp> {
        for (s, op) in [
            ("<=", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("==", CmpOp::Eq),
            ("!=", CmpOp::Ne),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
        ] {
            if self.eat_symbol(s) {
                return Some(op);
            }
        }
        None
    }

    fn pred_unit(&mut self) -> Result<Pred, String> {
        if self.eat_ident("not") || self.eat_symbol("!") {
            return Ok(Pred::Not(Box::new(self.pred_unit()?)));
        }
        if self.eat_ident("true") {
            return Ok(Pred::True);
        }
        // `(` is ambiguous: it may open a parenthesized predicate or a
        // parenthesized arithmetic expression. Try the comparison parse
        // first and backtrack to a predicate group if it fails.
        let mark = self.pos;
        match self.comparison() {
            Ok(p) => Ok(p),
            Err(cmp_err) => {
                self.pos = mark;
                if self.eat_symbol("(") {
                    let p = self.pred()?;
                    self.expect_symbol(")")?;
                    Ok(p)
                } else {
                    Err(cmp_err)
                }
            }
        }
    }

    fn comparison(&mut self) -> Result<Pred, String> {
        let lhs = self.expr()?;
        let op = self
            .cmp_op()
            .ok_or_else(|| format!("expected a comparison operator at {}", self.where_am_i()))?;
        let rhs = self.expr()?;
        Ok(Pred::Cmp(lhs, op, rhs))
    }

    fn pred_conj(&mut self) -> Result<Pred, String> {
        let mut p = self.pred_unit()?;
        while self.eat_ident("and") || self.eat_symbol("&&") {
            p = Pred::And(Box::new(p), Box::new(self.pred_unit()?));
        }
        Ok(p)
    }

    fn pred(&mut self) -> Result<Pred, String> {
        let mut p = self.pred_conj()?;
        while self.eat_ident("or") || self.eat_symbol("||") {
            p = Pred::Or(Box::new(p), Box::new(self.pred_conj()?));
        }
        Ok(p)
    }

    fn aggregate(&mut self) -> Result<Aggregate, String> {
        let Some(Token::Ident(name)) = self.peek().cloned() else {
            return Err(format!("expected an aggregate at {}", self.where_am_i()));
        };
        self.pos += 1;
        if name == "count" {
            return Ok(Aggregate::Count);
        }
        let make: Box<dyn Fn(Expr) -> Aggregate> = match name.as_str() {
            "sum" => Box::new(Aggregate::Sum),
            "min" => Box::new(Aggregate::Min),
            "max" => Box::new(Aggregate::Max),
            "avg" | "mean" => Box::new(Aggregate::Avg),
            _ => {
                let digits = name
                    .strip_prefix('p')
                    .filter(|d| !d.is_empty() && d.chars().all(|c| c.is_ascii_digit()));
                match digits
                    .and_then(|d| d.parse::<u32>().ok())
                    .filter(|&n| n <= 100)
                {
                    Some(n) => Box::new(move |e| Aggregate::Percentile(e, f64::from(n) / 100.0)),
                    None => {
                        return Err(format!(
                            "unknown aggregate `{name}` (count, sum, min, max, avg, p0–p100)"
                        ))
                    }
                }
            }
        };
        self.expect_symbol("(")?;
        let e = self.expr()?;
        self.expect_symbol(")")?;
        Ok(make(e))
    }

    fn done(&self) -> Result<(), String> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(format!("unexpected trailing {}", self.where_am_i()))
        }
    }
}

/// Parse a comma-separated aggregate list (`--select`).
pub fn parse_aggregates(input: &str) -> Result<Vec<Aggregate>, String> {
    let mut p = Parser::new(input)?;
    let mut out = vec![p.aggregate()?];
    while p.eat_symbol(",") {
        out.push(p.aggregate()?);
    }
    p.done()?;
    Ok(out)
}

/// Parse a predicate (`--where`). Empty input means [`Pred::True`].
pub fn parse_predicate(input: &str) -> Result<Pred, String> {
    if input.trim().is_empty() {
        return Ok(Pred::True);
    }
    let mut p = Parser::new(input)?;
    let pred = p.pred()?;
    p.done()?;
    Ok(pred)
}

/// Parse a comma-separated group-key expression list (`--group-by`).
/// Empty input means no grouping.
pub fn parse_group_by(input: &str) -> Result<Vec<Expr>, String> {
    if input.trim().is_empty() {
        return Ok(Vec::new());
    }
    let mut p = Parser::new(input)?;
    let mut out = vec![p.expr()?];
    while p.eat_symbol(",") {
        out.push(p.expr()?);
    }
    p.done()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_aggregates_with_units_and_percentiles() {
        let aggs = parse_aggregates("count, sum(total_io), p50(duration), avg(input)").unwrap();
        assert_eq!(aggs.len(), 4);
        assert_eq!(aggs[0], Aggregate::Count);
        assert_eq!(aggs[1], Aggregate::Sum(Expr::total_io()));
        assert_eq!(
            aggs[2],
            Aggregate::Percentile(Expr::col(Col::Duration), 0.5)
        );
    }

    #[test]
    fn parses_predicates_with_precedence_and_backtracking() {
        // `and` binds tighter than `or`.
        let p = parse_predicate("input > 1gb or duration >= 2h and reduce_tasks == 0").unwrap();
        assert_eq!(
            p,
            Pred::cmp(Col::Input, CmpOp::Gt, 1_000_000_000).or(Pred::cmp(
                Col::Duration,
                CmpOp::Ge,
                7_200
            )
            .and(Pred::cmp(Col::ReduceTasks, CmpOp::Eq, 0)))
        );
        // Parenthesized predicate vs parenthesized expression.
        let p =
            parse_predicate("(input + output) > 1mb and (duration < 60 or duration > 1h)").unwrap();
        assert!(matches!(p, Pred::And(..)));
        // not / !.
        assert_eq!(
            parse_predicate("not reduce_tasks == 0").unwrap(),
            parse_predicate("!(reduce_tasks == 0)").unwrap()
        );
    }

    #[test]
    fn parses_group_by_buckets() {
        let g = parse_group_by("submit/3600, map_tasks").unwrap();
        assert_eq!(g[0], Expr::submit_hour());
        assert_eq!(g[1], Expr::col(Col::MapTasks));
        assert!(parse_group_by("  ").unwrap().is_empty());
    }

    #[test]
    fn unit_suffixes() {
        assert_eq!(
            parse_predicate("input >= 2kb").unwrap(),
            Pred::cmp(Col::Input, CmpOp::Ge, 2_000)
        );
        assert_eq!(
            parse_predicate("duration < 3min").unwrap(),
            Pred::cmp(Col::Duration, CmpOp::Lt, 180)
        );
        assert_eq!(
            parse_predicate("submit < 1w").unwrap(),
            Pred::cmp(Col::Submit, CmpOp::Lt, 604_800)
        );
        // Underscore separators.
        assert_eq!(
            parse_predicate("input == 1_000_000").unwrap(),
            Pred::cmp(Col::Input, CmpOp::Eq, 1_000_000)
        );
    }

    #[test]
    fn rejects_nonsense_with_useful_messages() {
        assert!(parse_aggregates("p101(duration)")
            .unwrap_err()
            .contains("p101"));
        assert!(parse_predicate("frobnicate > 5")
            .unwrap_err()
            .contains("frobnicate"));
        assert!(parse_predicate("input = 5").unwrap_err().contains("=="));
        assert!(parse_predicate("input > 5 extra")
            .unwrap_err()
            .contains("trailing"));
        assert!(parse_predicate("input > 5zb").unwrap_err().contains("zb"));
        assert!(parse_aggregates("sum(input").is_err());
        assert!(parse_predicate("input >").is_err());
    }
}
