//! The shared command-line surface of the query-capable binaries.
//!
//! `swim-query` and `swim-catalog query` accept the same flag set
//! (`--select/--where/--group-by/--order-by/--desc/--limit/--format/
//! --serial`); this module owns the parsing, validation, and renderer
//! dispatch for it so the two CLIs cannot drift apart. Error messages
//! are pinned by `crates/query/tests/cli_errors.rs`.

use crate::exec::QueryOutput;
use crate::plan::Query;
use crate::{parse, render};

/// Output rendering selected by `--format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Aligned text table (the default).
    #[default]
    Table,
    /// Markdown through the report document model.
    Markdown,
    /// One JSON object (columns, rows, stats).
    Json,
}

impl OutputFormat {
    /// Parse a `--format` value.
    pub fn parse(text: &str) -> Result<OutputFormat, String> {
        match text {
            "table" | "text" => Ok(OutputFormat::Table),
            "md" | "markdown" => Ok(OutputFormat::Markdown),
            "json" => Ok(OutputFormat::Json),
            other => Err(format!("unknown format {other} (expected table|md|json)")),
        }
    }
}

/// Accumulates the common query flags while a binary walks its
/// argument stream; [`QueryFlags::build_query`] turns them into a typed
/// [`Query`] once parsing is done.
#[derive(Debug, Default)]
pub struct QueryFlags {
    select: Option<String>,
    where_: String,
    group_by: String,
    order_by: Option<usize>,
    descending: bool,
    limit: Option<usize>,
    /// Selected output rendering.
    pub format: OutputFormat,
    /// `--serial`: single-threaded execution (bit-identical output).
    pub serial: bool,
}

impl QueryFlags {
    /// Fresh flags (count-everything defaults).
    pub fn new() -> QueryFlags {
        QueryFlags::default()
    }

    /// Try to consume one flag; `next` supplies its value when needed.
    /// Returns `Ok(false)` for flags this module does not own.
    pub fn accept(
        &mut self,
        flag: &str,
        next: impl FnOnce() -> Result<String, String>,
    ) -> Result<bool, String> {
        match flag {
            "--select" => self.select = Some(next()?),
            "--where" => self.where_ = next()?,
            "--group-by" => self.group_by = next()?,
            "--order-by" => {
                let n: usize = next()?
                    .parse()
                    .map_err(|_| "--order-by requires a 1-based column number".to_owned())?;
                if n == 0 {
                    return Err("--order-by columns are 1-based".into());
                }
                self.order_by = Some(n - 1);
            }
            "--desc" => self.descending = true,
            "--limit" => {
                self.limit = Some(
                    next()?
                        .parse()
                        .map_err(|_| "--limit requires an integer".to_owned())?,
                )
            }
            "--format" => self.format = OutputFormat::parse(&next()?)?,
            "--serial" => self.serial = true,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Build the typed query from the accumulated flag text.
    pub fn build_query(&self) -> Result<Query, String> {
        let mut query = Query::new().filter(parse::parse_predicate(&self.where_)?);
        for key in parse::parse_group_by(&self.group_by)? {
            query = query.group(key);
        }
        for agg in parse::parse_aggregates(self.select.as_deref().unwrap_or("count"))? {
            query = query.select(agg);
        }
        if let Some(column) = self.order_by {
            query = query.order_by(column, self.descending);
        }
        if let Some(limit) = self.limit {
            query = query.limit(limit);
        }
        Ok(query)
    }
}

/// Render a finished query for the selected format. The returned string
/// is what the binary prints verbatim (JSON carries its trailing
/// newline here).
pub fn render_for(output: &QueryOutput, format: OutputFormat, title: &str) -> String {
    match format {
        OutputFormat::Table => render::render_text(output),
        OutputFormat::Markdown => render::render_markdown(output, title),
        OutputFormat::Json => {
            let mut out = render::render_json(output);
            out.push('\n');
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::Aggregate;
    use crate::expr::{CmpOp, Col, Pred};

    fn value(v: &str) -> impl FnOnce() -> Result<String, String> + '_ {
        move || Ok(v.to_owned())
    }

    fn missing() -> Result<String, String> {
        Err("flag requires a value".into())
    }

    #[test]
    fn accepts_the_shared_flag_set_and_rejects_others() {
        let mut flags = QueryFlags::new();
        assert!(flags.accept("--select", value("count")).unwrap());
        assert!(flags.accept("--where", value("input > 1gb")).unwrap());
        assert!(flags.accept("--group-by", value("map_tasks")).unwrap());
        assert!(flags.accept("--order-by", value("2")).unwrap());
        assert!(flags.accept("--desc", missing).unwrap());
        assert!(flags.accept("--limit", value("5")).unwrap());
        assert!(flags.accept("--format", value("json")).unwrap());
        assert!(flags.accept("--serial", missing).unwrap());
        assert!(!flags.accept("--trace", value("x.swim")).unwrap());
        assert!(!flags.accept("--frobnicate", missing).unwrap());

        let query = flags.build_query().unwrap();
        assert_eq!(
            query.predicate,
            Pred::cmp(Col::Input, CmpOp::Gt, 1_000_000_000)
        );
        assert_eq!(query.aggregates, vec![Aggregate::Count]);
        assert_eq!(query.limit, Some(5));
        assert_eq!(
            query.order_by.map(|o| (o.column, o.descending)),
            Some((1, true))
        );
        assert_eq!(flags.format, OutputFormat::Json);
        assert!(flags.serial);
    }

    #[test]
    fn flag_errors_are_pinned() {
        let mut flags = QueryFlags::new();
        assert_eq!(
            flags.accept("--order-by", value("0")).unwrap_err(),
            "--order-by columns are 1-based"
        );
        assert_eq!(
            flags.accept("--order-by", value("x")).unwrap_err(),
            "--order-by requires a 1-based column number"
        );
        assert_eq!(
            flags.accept("--limit", value("many")).unwrap_err(),
            "--limit requires an integer"
        );
        assert_eq!(
            flags.accept("--format", value("parquet")).unwrap_err(),
            "unknown format parquet (expected table|md|json)"
        );
    }

    #[test]
    fn default_query_counts_everything() {
        let query = QueryFlags::new().build_query().unwrap();
        assert_eq!(query.aggregates, vec![Aggregate::Count]);
        assert_eq!(query.predicate, Pred::True);
        assert!(query.group_by.is_empty());
    }
}
