//! The shared command-line surface of the query-capable binaries.
//!
//! `swim-query` and `swim-catalog query` accept the same flag set
//! (`--select/--where/--group-by/--order-by/--desc/--limit/--format/
//! --serial/--explain/--profile`); this module owns the parsing,
//! validation, and renderer dispatch for it so the two CLIs cannot
//! drift apart. Error messages are pinned by
//! `crates/query/tests/cli_errors.rs`.

use crate::exec::QueryOutput;
use crate::explain::Explain;
use crate::plan::Query;
use crate::{parse, render};
use swim_report::doc::KeyValueBlock;
use swim_report::render::Table;
use swim_report::{Block, Section};

/// Output rendering selected by `--format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Aligned text table (the default).
    #[default]
    Table,
    /// Markdown through the report document model.
    Markdown,
    /// One JSON object (columns, rows, stats).
    Json,
}

impl OutputFormat {
    /// Parse a `--format` value.
    pub fn parse(text: &str) -> Result<OutputFormat, String> {
        match text {
            "table" | "text" => Ok(OutputFormat::Table),
            "md" | "markdown" => Ok(OutputFormat::Markdown),
            "json" => Ok(OutputFormat::Json),
            other => Err(format!("unknown format {other} (expected table|md|json)")),
        }
    }
}

/// Accumulates the common query flags while a binary walks its
/// argument stream; [`QueryFlags::build_query`] turns them into a typed
/// [`Query`] once parsing is done.
#[derive(Debug, Default)]
pub struct QueryFlags {
    select: Option<String>,
    where_: String,
    group_by: String,
    order_by: Option<usize>,
    descending: bool,
    limit: Option<usize>,
    /// Selected output rendering.
    pub format: OutputFormat,
    /// `--serial`: single-threaded execution (bit-identical output).
    pub serial: bool,
    /// `--explain`: print the plan and zone-map verdicts, execute
    /// nothing.
    pub explain: bool,
    /// `--profile`: execute with all instrumentation forced on, then
    /// print the collected metrics.
    pub profile: bool,
}

impl QueryFlags {
    /// Fresh flags (count-everything defaults).
    pub fn new() -> QueryFlags {
        QueryFlags::default()
    }

    /// Try to consume one flag; `next` supplies its value when needed.
    /// Returns `Ok(false)` for flags this module does not own.
    pub fn accept(
        &mut self,
        flag: &str,
        next: impl FnOnce() -> Result<String, String>,
    ) -> Result<bool, String> {
        match flag {
            "--select" => self.select = Some(next()?),
            "--where" => self.where_ = next()?,
            "--group-by" => self.group_by = next()?,
            "--order-by" => {
                let n: usize = next()?
                    .parse()
                    .map_err(|_| "--order-by requires a 1-based column number".to_owned())?;
                if n == 0 {
                    return Err("--order-by columns are 1-based".into());
                }
                self.order_by = Some(n - 1);
            }
            "--desc" => self.descending = true,
            "--limit" => {
                self.limit = Some(
                    next()?
                        .parse()
                        .map_err(|_| "--limit requires an integer".to_owned())?,
                )
            }
            "--format" => self.format = OutputFormat::parse(&next()?)?,
            "--serial" => self.serial = true,
            "--explain" => self.explain = true,
            "--profile" => self.profile = true,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Cross-flag validation, called once the whole command line is
    /// parsed.
    pub fn validate(&self) -> Result<(), String> {
        if self.explain && self.profile {
            return Err(
                "--explain and --profile are mutually exclusive (explain never executes)".into(),
            );
        }
        Ok(())
    }

    /// Build the typed query from the accumulated flag text.
    pub fn build_query(&self) -> Result<Query, String> {
        let mut query = Query::new().filter(parse::parse_predicate(&self.where_)?);
        for key in parse::parse_group_by(&self.group_by)? {
            query = query.group(key);
        }
        for agg in parse::parse_aggregates(self.select.as_deref().unwrap_or("count"))? {
            query = query.select(agg);
        }
        if let Some(column) = self.order_by {
            query = query.order_by(column, self.descending);
        }
        if let Some(limit) = self.limit {
            query = query.limit(limit);
        }
        Ok(query)
    }
}

/// Render a finished query for the selected format. The returned string
/// is what the binary prints verbatim (JSON carries its trailing
/// newline here).
pub fn render_for(output: &QueryOutput, format: OutputFormat, title: &str) -> String {
    match format {
        OutputFormat::Table => render::render_text(output),
        OutputFormat::Markdown => render::render_markdown(output, title),
        OutputFormat::Json => {
            let mut out = render::render_json(output);
            out.push('\n');
            out
        }
    }
}

/// Render an [`Explain`] for the selected format (same dispatch as
/// [`render_for`]; JSON carries its trailing newline here).
pub fn render_explain(explain: &Explain, format: OutputFormat, title: &str) -> String {
    match format {
        OutputFormat::Table => explain.render_text(title),
        OutputFormat::Markdown => explain.render_markdown(title),
        OutputFormat::Json => {
            let mut out = explain.render_json();
            out.push('\n');
            out
        }
    }
}

/// Render a `--profile` metrics snapshot for the selected format.
///
/// Table and Markdown get a report section: counters and gauges as
/// key/value pairs (deterministic for a deterministic workload), then
/// span and histogram tables (wall-clock timings, inherently not).
/// JSON gets the snapshot as JSON lines ([`swim_obs::jsonl`]), one
/// object per instrument, appended after the result object.
pub fn render_profile(snapshot: &swim_obs::Snapshot, format: OutputFormat) -> String {
    if let OutputFormat::Json = format {
        return swim_obs::jsonl::to_jsonl(snapshot);
    }
    let mut section = Section::new("profile (swim-obs)");
    let mut pairs: Vec<(String, String)> = snapshot
        .counters
        .iter()
        .map(|(name, value)| (name.clone(), value.to_string()))
        .collect();
    pairs.extend(
        snapshot
            .gauges
            .iter()
            .map(|(name, value)| (name.clone(), value.to_string())),
    );
    if !pairs.is_empty() {
        let key_width = pairs.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        section.push(Block::KeyValue(KeyValueBlock::new(pairs, key_width)));
    }
    if !snapshot.spans.is_empty() {
        let mut table = Table::new(vec!["span", "count", "total_us", "min_us", "max_us"]);
        for span in &snapshot.spans {
            table.row(vec![
                span.path.clone(),
                span.count.to_string(),
                (span.total_ns / 1_000).to_string(),
                (span.min_ns / 1_000).to_string(),
                (span.max_ns / 1_000).to_string(),
            ]);
        }
        section.captioned_table("\nspans", table);
    }
    if !snapshot.histograms.is_empty() {
        let cell = |v: Option<u64>| v.map_or_else(|| "-".to_owned(), |v| v.to_string());
        let mut table = Table::new(vec![
            "histogram",
            "count",
            "min",
            "p50",
            "p90",
            "p99",
            "max",
        ]);
        for h in &snapshot.histograms {
            table.row(vec![
                h.name.clone(),
                h.count.to_string(),
                cell(h.min),
                cell(h.p50),
                cell(h.p90),
                cell(h.p99),
                cell(h.max),
            ]);
        }
        section.captioned_table("\nhistograms", table);
    }
    if section.blocks.is_empty() {
        section.prose("(no instruments fired)\n");
    }
    match format {
        OutputFormat::Markdown => {
            let mut report = swim_report::Report::new("profile");
            report.push(section);
            swim_report::markdown::render_report(&report)
        }
        _ => section.render_text(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::Aggregate;
    use crate::expr::{CmpOp, Col, Pred};

    fn value(v: &str) -> impl FnOnce() -> Result<String, String> + '_ {
        move || Ok(v.to_owned())
    }

    fn missing() -> Result<String, String> {
        Err("flag requires a value".into())
    }

    #[test]
    fn accepts_the_shared_flag_set_and_rejects_others() {
        let mut flags = QueryFlags::new();
        assert!(flags.accept("--select", value("count")).unwrap());
        assert!(flags.accept("--where", value("input > 1gb")).unwrap());
        assert!(flags.accept("--group-by", value("map_tasks")).unwrap());
        assert!(flags.accept("--order-by", value("2")).unwrap());
        assert!(flags.accept("--desc", missing).unwrap());
        assert!(flags.accept("--limit", value("5")).unwrap());
        assert!(flags.accept("--format", value("json")).unwrap());
        assert!(flags.accept("--serial", missing).unwrap());
        assert!(!flags.accept("--trace", value("x.swim")).unwrap());
        assert!(!flags.accept("--frobnicate", missing).unwrap());

        let query = flags.build_query().unwrap();
        assert_eq!(
            query.predicate,
            Pred::cmp(Col::Input, CmpOp::Gt, 1_000_000_000)
        );
        assert_eq!(query.aggregates, vec![Aggregate::Count]);
        assert_eq!(query.limit, Some(5));
        assert_eq!(
            query.order_by.map(|o| (o.column, o.descending)),
            Some((1, true))
        );
        assert_eq!(flags.format, OutputFormat::Json);
        assert!(flags.serial);
    }

    #[test]
    fn flag_errors_are_pinned() {
        let mut flags = QueryFlags::new();
        assert_eq!(
            flags.accept("--order-by", value("0")).unwrap_err(),
            "--order-by columns are 1-based"
        );
        assert_eq!(
            flags.accept("--order-by", value("x")).unwrap_err(),
            "--order-by requires a 1-based column number"
        );
        assert_eq!(
            flags.accept("--limit", value("many")).unwrap_err(),
            "--limit requires an integer"
        );
        assert_eq!(
            flags.accept("--format", value("parquet")).unwrap_err(),
            "unknown format parquet (expected table|md|json)"
        );
    }

    #[test]
    fn default_query_counts_everything() {
        let query = QueryFlags::new().build_query().unwrap();
        assert_eq!(query.aggregates, vec![Aggregate::Count]);
        assert_eq!(query.predicate, Pred::True);
        assert!(query.group_by.is_empty());
    }
}
