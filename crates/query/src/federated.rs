//! Federated query execution over a [`swim_catalog::Catalog`]: the same
//! typed [`Query`] surface, with **two-level pruning**.
//!
//! Planning runs the predicate's interval analysis
//! ([`crate::Pred::zone_verdict`]) twice:
//!
//! 1. against each shard's *manifest-level* zone map — a `Never` shard
//!    is never opened (no file I/O at all, not even its footer);
//! 2. for surviving shards, against the store's per-chunk zone maps,
//!    exactly as single-store execution does.
//!
//! Execution fans surviving shards out over worker-claimed indices (the
//! same claim-a-counter pattern as [`swim_store::Store::par_fold_columns`])
//! and folds every chunk into the *same* accumulator type as single-store
//! execution; merges are exact and order-insensitive and finalization is
//! shared, so [`CatalogQuery::execute`], [`CatalogQuery::execute_serial`],
//! and a single-store query over the concatenated trace all produce
//! bit-identical rows (property-tested).
//!
//! Decoded shards are served from the catalog's `(shard, generation)`
//! LRU when a full-shard decode is wanted; chunk-pruned reads bypass the
//! cache rather than decode chunks the planner ruled out.

use crate::exec::{fold_chunk, merge_acc, stats_for, Acc, ExecStats, QueryOutput};
use crate::plan::{plan, Query};
use crate::{QueryError, Tri};
use std::sync::atomic::{AtomicUsize, Ordering};
use swim_catalog::Catalog;

/// A finished federated query: the ordinary [`QueryOutput`] plus
/// shard-level pruning counters.
///
/// `output.stats` aggregates the chunk-level counters of the shards that
/// were actually opened; shards pruned at the manifest level contribute
/// nothing there (their chunk counts are unknown by design — pruning
/// them means never reading their footers).
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogOutput {
    /// Columns, rows, and chunk-level stats over the scanned shards.
    pub output: QueryOutput,
    /// Shards in the catalog.
    pub shards_total: usize,
    /// Shards opened and scanned.
    pub shards_scanned: usize,
    /// Shards pruned via manifest zone maps (never opened).
    pub shards_pruned: usize,
}

impl CatalogOutput {
    /// The one-line shard/chunk pruning summary shown on stderr by the
    /// CLIs.
    pub fn stats_line(&self) -> String {
        format!(
            "shards: scanned {} of {} ({} pruned via shard zone maps); {}",
            self.shards_scanned,
            self.shards_total,
            self.shards_pruned,
            crate::render::stats_line(&self.output)
        )
    }
}

/// Federated execution over a catalog — implemented for
/// [`swim_catalog::Catalog`], so call sites read `catalog.execute(&query)`.
pub trait CatalogQuery {
    /// Execute in parallel: workers claim surviving shard indices off a
    /// shared counter. Bit-identical to [`CatalogQuery::execute_serial`].
    fn execute(&self, query: &Query) -> Result<CatalogOutput, QueryError>;

    /// Execute on the calling thread, shards in manifest order — the
    /// reference path for determinism tests and tiny catalogs.
    fn execute_serial(&self, query: &Query) -> Result<CatalogOutput, QueryError>;
}

/// Shard indices that survive manifest-level pruning.
fn prune_shards(catalog: &Catalog, query: &Query) -> Vec<usize> {
    let selected: Vec<usize> = catalog
        .shards()
        .iter()
        .enumerate()
        .filter(|(_, entry)| query.predicate.zone_verdict(&entry.zone) != Tri::Never)
        .map(|(idx, _)| idx)
        .collect();
    crate::obs::SHARDS_SCANNED.add(selected.len() as u64);
    crate::obs::SHARDS_PRUNED.add((catalog.shard_count() - selected.len()) as u64);
    selected
}

/// Open, chunk-plan, and fold one shard.
fn fold_shard(
    catalog: &Catalog,
    idx: usize,
    query: &Query,
) -> Result<(Acc, ExecStats), QueryError> {
    let store = catalog.open_shard(idx)?;
    let p = plan(&store, query);
    let mut stats = stats_for(&p);
    let mut acc = Acc::new();
    if let Some(chunks) = catalog.cached_columns(idx) {
        debug_assert_eq!(chunks.len(), store.chunk_count(), "immutable shard files");
        for &ci in &p.selected {
            fold_chunk(&mut acc, query, &chunks[ci], p.full_match[ci]);
        }
    } else if p.selected.len() == store.chunk_count() && catalog.cache_capacity() > 0 {
        // Full-shard read with caching enabled: decode through the LRU
        // so the next query skips the varint decode entirely.
        let chunks = catalog.load_columns(idx, &store)?;
        for &ci in &p.selected {
            fold_chunk(&mut acc, query, &chunks[ci], p.full_match[ci]);
        }
    } else {
        // Chunk-pruned read (or caching disabled): decode only what the
        // planner selected, straight off the store, no extra copy.
        acc = store
            .fold_columns(&p.selected, acc, |mut acc, ci, cols| {
                fold_chunk(&mut acc, query, cols, p.full_match[ci]);
                acc
            })
            .map_err(QueryError::from)?;
    }
    stats.rows_scanned = acc.rows_scanned;
    stats.rows_matched = acc.rows_matched;
    Ok((acc, stats))
}

fn add_stats(total: &mut ExecStats, shard: ExecStats) {
    total.chunks_total += shard.chunks_total;
    total.chunks_scanned += shard.chunks_scanned;
    total.chunks_skipped += shard.chunks_skipped;
    total.chunks_full_match += shard.chunks_full_match;
    total.rows_scanned += shard.rows_scanned;
    total.rows_matched += shard.rows_matched;
}

fn finalize_catalog(
    catalog: &Catalog,
    query: &Query,
    selected: &[usize],
    acc: Acc,
    stats: ExecStats,
) -> CatalogOutput {
    crate::obs::record_rows(stats.rows_scanned, stats.rows_matched);
    CatalogOutput {
        output: crate::exec::finalize(query, acc, stats),
        shards_total: catalog.shard_count(),
        shards_scanned: selected.len(),
        shards_pruned: catalog.shard_count() - selected.len(),
    }
}

impl CatalogQuery for Catalog {
    fn execute(&self, query: &Query) -> Result<CatalogOutput, QueryError> {
        let _span = swim_obs::span("query.federated");
        query.validate()?;
        let selected = prune_shards(self, query);
        if selected.is_empty() {
            return Ok(finalize_catalog(
                self,
                query,
                &selected,
                Acc::new(),
                ExecStats::default(),
            ));
        }
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(selected.len());
        let cursor = AtomicUsize::new(0);
        let selected_ref = &selected;
        let worker_results: Vec<Result<(Option<Acc>, ExecStats), QueryError>> =
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        s.spawn(|| {
                            let mut merged: Option<Acc> = None;
                            let mut stats = ExecStats::default();
                            loop {
                                // lint: ordering: work-stealing cursor; slot handoff is via scoped-thread join
                                let slot = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(&idx) = selected_ref.get(slot) else {
                                    break;
                                };
                                let (acc, shard_stats) = fold_shard(self, idx, query)?;
                                add_stats(&mut stats, shard_stats);
                                merged = Some(match merged {
                                    None => acc,
                                    Some(mut m) => {
                                        merge_acc(&mut m, acc);
                                        m
                                    }
                                });
                            }
                            Ok((merged, stats))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // lint: allow(panic, "re-raises a worker panic; join only fails if the closure panicked")
                    .map(|h| h.join().expect("federated worker panicked"))
                    .collect()
            });
        let mut acc = Acc::new();
        let mut stats = ExecStats::default();
        for result in worker_results {
            let (worker_acc, worker_stats) = result?;
            add_stats(&mut stats, worker_stats);
            if let Some(worker_acc) = worker_acc {
                merge_acc(&mut acc, worker_acc);
            }
        }
        Ok(finalize_catalog(self, query, &selected, acc, stats))
    }

    fn execute_serial(&self, query: &Query) -> Result<CatalogOutput, QueryError> {
        let _span = swim_obs::span("query.federated_serial");
        query.validate()?;
        let selected = prune_shards(self, query);
        let mut acc = Acc::new();
        let mut stats = ExecStats::default();
        for &idx in &selected {
            let (shard_acc, shard_stats) = fold_shard(self, idx, query)?;
            add_stats(&mut stats, shard_stats);
            merge_acc(&mut acc, shard_acc);
        }
        Ok(finalize_catalog(self, query, &selected, acc, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AggValue, Aggregate};
    use crate::expr::{CmpOp, Col, Expr, Pred};
    use swim_catalog::{Catalog, CatalogOptions};
    use swim_store::{store_to_vec, Store, StoreOptions};
    use swim_trace::trace::WorkloadKind;
    use swim_trace::{DataSize, Dur, Job, JobBuilder, Timestamp, Trace};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "swim-federated-test-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn jobs(range: std::ops::Range<u64>, submit_base: u64) -> Vec<Job> {
        let start = range.start;
        range
            .map(|i| {
                let mut b = JobBuilder::new(i)
                    .submit(Timestamp::from_secs(submit_base + (i - start) * 60))
                    .duration(Dur::from_secs(1 + i % 500))
                    .input(DataSize::from_bytes(i * 1_000_003 % (1 << 33)))
                    .output(DataSize::from_bytes(i * 77))
                    .map_task_time(Dur::from_secs(3 + i % 60))
                    .tasks(1 + (i % 20) as u32, (i % 4) as u32);
                if i % 4 > 0 {
                    b = b
                        .shuffle(DataSize::from_bytes(i * 13))
                        .reduce_task_time(Dur::from_secs(1 + i % 30));
                }
                b.build().unwrap()
            })
            .collect()
    }

    /// A three-shard catalog with disjoint submit windows, plus the
    /// single store holding the same concatenated jobs.
    fn catalog_and_store(tag: &str) -> (Catalog, Store, std::path::PathBuf) {
        let dir = temp_dir(tag);
        let mut catalog = Catalog::init(&dir).unwrap();
        let options = CatalogOptions {
            jobs_per_shard: 10_000,
            store: StoreOptions { jobs_per_chunk: 37 },
        };
        let mut all = Vec::new();
        for (shard, base) in [(0u64, 0u64), (1, 500_000), (2, 1_000_000)] {
            let shard_jobs = jobs(shard * 1000..shard * 1000 + 1000, base);
            all.extend(shard_jobs.clone());
            let trace = Trace::new(WorkloadKind::Custom("fed".into()), 9, shard_jobs).unwrap();
            catalog.ingest_trace(&trace, &options).unwrap();
        }
        let trace = Trace::new(WorkloadKind::Custom("fed".into()), 9, all).unwrap();
        let store =
            Store::from_vec(store_to_vec(&trace, &StoreOptions { jobs_per_chunk: 37 })).unwrap();
        (catalog, store, dir)
    }

    fn queries() -> Vec<Query> {
        vec![
            Query::new().select(Aggregate::Count),
            Query::new()
                .filter(Pred::cmp(Col::Duration, CmpOp::Ge, 250))
                .group(Expr::submit_hour())
                .select(Aggregate::Count)
                .select(Aggregate::Sum(Expr::total_io()))
                .select(Aggregate::Avg(Expr::col(Col::Duration)))
                .select(Aggregate::Percentile(Expr::col(Col::Duration), 0.9)),
            // Selective on submit: two of three shards are prunable at
            // the manifest level.
            Query::new()
                .filter(Pred::submit_range(500_000, 560_000))
                .group(Expr::col(Col::ReduceTasks))
                .select(Aggregate::Count)
                .select(Aggregate::Min(Expr::col(Col::Submit)))
                .select(Aggregate::Max(Expr::col(Col::Submit))),
            Query::new()
                .filter(Pred::cmp(Col::Input, CmpOp::Gt, 1 << 30))
                .group(Expr::col(Col::MapTasks))
                .select(Aggregate::Count)
                .order_by(1, true)
                .limit(4),
        ]
    }

    #[test]
    fn federated_matches_single_store_and_serial_matches_parallel() {
        let (catalog, store, dir) = catalog_and_store("parity");
        for query in &queries() {
            let single = crate::execute_serial(&store, query).unwrap();
            let serial = catalog.execute_serial(query).unwrap();
            assert_eq!(serial.output.columns, single.columns);
            assert_eq!(serial.output.rows, single.rows, "query {query:?}");
            for _ in 0..3 {
                let parallel = catalog.execute(query).unwrap();
                assert_eq!(parallel, serial, "parallel ≡ serial, stats included");
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_level_pruning_never_opens_disjoint_shards() {
        let (catalog, _store, dir) = catalog_and_store("prune");
        let query = Query::new()
            .filter(Pred::submit_range(500_000, 560_000))
            .select(Aggregate::Count);
        let out = catalog.execute(&query).unwrap();
        assert_eq!(out.shards_total, 3);
        assert_eq!(out.shards_pruned, 2, "two shards ruled out by manifest");
        assert_eq!(out.shards_scanned, 1);
        // Chunk totals cover only the opened shard.
        assert!(out.output.stats.chunks_total < 3 * 28);
        // Count matches the per-shard submit windows: 1000 jobs starting
        // at 500_000, spaced 60s → first 1000 of them fall in the hour.
        assert_eq!(out.output.rows[0].values[0], AggValue::Int(1000));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn impossible_predicate_prunes_everything_and_still_yields_global_row() {
        let (catalog, _store, dir) = catalog_and_store("never");
        // Satellite regression: Avg/Percentile over a catalog whose every
        // shard is skipped must finalize to Null, not panic or zero.
        let query = Query::new()
            .filter(Pred::cmp(Col::Duration, CmpOp::Gt, u64::MAX - 1))
            .select(Aggregate::Count)
            .select(Aggregate::Avg(Expr::col(Col::Duration)))
            .select(Aggregate::Percentile(Expr::col(Col::Duration), 0.5));
        let out = catalog.execute(&query).unwrap();
        assert_eq!(out.shards_pruned, 3);
        assert_eq!(out.shards_scanned, 0);
        assert_eq!(out.output.rows.len(), 1);
        assert_eq!(
            out.output.rows[0].values,
            vec![AggValue::Int(0), AggValue::Null, AggValue::Null]
        );
        assert_eq!(out, catalog.execute_serial(&query).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_matching_shard_merges_into_populated_group_state() {
        // Satellite regression: one shard contributes zero matching rows
        // (opened, scanned, nothing passes the filter) while another
        // carries the groups — the merge of its empty accumulator must
        // not disturb the populated one, in either merge direction.
        let dir = temp_dir("empty-merge");
        let mut catalog = Catalog::init(&dir).unwrap();
        let options = CatalogOptions {
            jobs_per_shard: 10_000,
            store: StoreOptions { jobs_per_chunk: 16 },
        };
        // Predicate `input >= submit`: a two-column comparison whose
        // interval analysis cannot rule shard B out (its input and
        // submit ranges overlap), yet no B row actually matches.
        // Shard A: input ≫ submit, every row matches.
        let a: Vec<Job> = (0..200u64)
            .map(|i| {
                JobBuilder::new(i)
                    .submit(Timestamp::from_secs(i))
                    .duration(Dur::from_secs(100 + i % 7))
                    .input(DataSize::from_bytes(1_000_000 + i))
                    .map_task_time(Dur::from_secs(10))
                    .tasks(2, 0)
                    .build()
                    .unwrap()
            })
            .collect();
        // Shard B: input = k, submit = k + 10 — always input < submit.
        let b: Vec<Job> = (1000..1200u64)
            .map(|i| {
                let k = i - 1000;
                JobBuilder::new(i)
                    .submit(Timestamp::from_secs(k + 10))
                    .duration(Dur::from_secs(5))
                    .input(DataSize::from_bytes(k))
                    .map_task_time(Dur::from_secs(1))
                    .tasks(1, 0)
                    .build()
                    .unwrap()
            })
            .collect();
        for shard in [a.clone(), b.clone()] {
            let trace = Trace::new(WorkloadKind::Custom("m".into()), 3, shard).unwrap();
            catalog.ingest_trace(&trace, &options).unwrap();
        }
        let query = Query::new()
            .filter(Pred::Cmp(
                Expr::col(Col::Input),
                CmpOp::Ge,
                Expr::col(Col::Submit),
            ))
            .group(Expr::col(Col::Duration))
            .select(Aggregate::Count)
            .select(Aggregate::Avg(Expr::col(Col::Input)))
            .select(Aggregate::Percentile(Expr::col(Col::Input), 0.5));
        let out = catalog.execute(&query).unwrap();
        let serial = catalog.execute_serial(&query).unwrap();
        assert_eq!(out, serial);
        assert_eq!(out.shards_scanned, 2, "both shards open (zone Maybe)");
        assert_eq!(out.output.stats.rows_matched, 200, "only shard A rows");
        assert_eq!(out.output.rows.len(), 7, "durations 100..=106");
        // Oracle: single store over the concatenation.
        let mut all = a;
        all.extend(b);
        let trace = Trace::new(WorkloadKind::Custom("m".into()), 3, all).unwrap();
        let store =
            Store::from_vec(store_to_vec(&trace, &StoreOptions { jobs_per_chunk: 16 })).unwrap();
        let single = crate::execute_serial(&store, &query).unwrap();
        assert_eq!(out.output.rows, single.rows);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repeated_queries_hit_the_column_cache_with_identical_results() {
        let (catalog, _store, dir) = catalog_and_store("cache");
        let query = Query::new()
            .group(Expr::col(Col::ReduceTasks))
            .select(Aggregate::Count)
            .select(Aggregate::Sum(Expr::total_io()));
        let first = catalog.execute(&query).unwrap();
        let warm = catalog.cache_stats();
        assert_eq!(warm.misses, 3, "full scan decodes and caches every shard");
        assert_eq!(warm.entries, 3);
        let second = catalog.execute(&query).unwrap();
        let stats = catalog.cache_stats();
        assert_eq!(stats.misses, 3, "no re-decode on the warm run");
        assert_eq!(stats.hits, 3);
        assert_eq!(second, first);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_queries_fail_before_touching_shards() {
        let (catalog, _store, dir) = catalog_and_store("invalid");
        assert!(matches!(
            catalog.execute(&Query::new()),
            Err(QueryError::Invalid(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_line_mentions_both_levels() {
        let (catalog, _store, dir) = catalog_and_store("line");
        let out = catalog
            .execute(
                &Query::new()
                    .filter(Pred::submit_range(0, 1))
                    .select(Aggregate::Count),
            )
            .unwrap();
        let line = out.stats_line();
        assert!(line.contains("shards: scanned"), "{line}");
        assert!(line.contains("chunks"), "{line}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
