//! Acceptance: streaming a scenario into a catalog leaves the catalog
//! reporting *exactly* the statistics the generator declared, shards
//! appear incrementally (O(chunk) memory, not O(trace)), and the
//! round-tripped jobs are the stream's jobs.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use swim_catalog::{Catalog, CatalogOptions};
use swim_scenario::{generate_into_catalog, presets, ScenarioStream};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// Fresh per-test scratch directory (parallel-test and rerun safe).
fn temp_dir(tag: &str) -> PathBuf {
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("swim-scenario-{tag}-{}-{n}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clean stale temp dir");
    }
    dir
}

fn small_options(jobs_per_shard: u32) -> CatalogOptions {
    CatalogOptions {
        jobs_per_shard,
        ..CatalogOptions::default()
    }
}

/// The headline acceptance check, over at least four presets: catalog
/// `summary()` must agree with the stream's declared [`ScenarioStats`]
/// on job count, bytes moved, submit span, and workload label.
#[test]
fn catalog_summary_matches_declared_statistics() {
    let scenarios = [
        presets::steady_retail(),
        presets::bursty_telecom(),
        presets::heavytail_adtech(),
        presets::multitenant_saas(),
        presets::retrystorm_fintech(),
    ];
    for scenario in &scenarios {
        let dir = temp_dir(&scenario.name);
        let mut catalog = Catalog::init(&dir).expect("init catalog");
        let outcome =
            generate_into_catalog(scenario, 42, 1_500, 256, &mut catalog, &small_options(250))
                .expect("generation succeeds");
        let summary = catalog.summary();
        let declared = &outcome.stats.generation;
        assert_eq!(
            summary.jobs as u64, declared.jobs,
            "{}: job count mismatch",
            scenario.name
        );
        assert_eq!(
            summary.bytes_moved, declared.bytes_moved,
            "{}: bytes-moved mismatch",
            scenario.name
        );
        assert_eq!(
            summary.length,
            declared.span(),
            "{}: submit-span mismatch",
            scenario.name
        );
        assert_eq!(
            summary.workload,
            scenario.workload_label(),
            "{}: workload label mismatch",
            scenario.name
        );
        assert_eq!(summary.machines, scenario.machines());
        assert_eq!(outcome.ingest.jobs, declared.jobs);
        assert!(
            outcome.ingest.shards >= 2,
            "{}: {} jobs over 250-job shards must split",
            scenario.name,
            declared.jobs
        );
        std::fs::remove_dir_all(&dir).expect("clean temp dir");
    }
}

/// The catalog's round-tripped jobs are bit-identical to a fresh run of
/// the same stream — ingestion neither reorders nor rewrites anything.
#[test]
fn catalog_round_trips_the_stream() {
    let scenario = presets::multitenant_saas();
    let dir = temp_dir("roundtrip");
    let mut catalog = Catalog::init(&dir).expect("init catalog");
    generate_into_catalog(&scenario, 7, 1_200, 128, &mut catalog, &small_options(500))
        .expect("generation succeeds");
    let stored = catalog.read_trace().expect("read catalog back");
    let direct: Vec<_> = ScenarioStream::new(&scenario, 7, 1_200)
        .expect("valid scenario")
        .flatten()
        .collect();
    assert_eq!(stored.jobs(), &direct[..]);
    std::fs::remove_dir_all(&dir).expect("clean temp dir");
}

/// Shard accounting for the bounded-memory claim: with a 128-job chunk
/// and 250-job shards, shards must be on disk well before the stream
/// ends — the trace is never materialized in one buffer.
#[test]
fn shards_publish_while_the_stream_is_still_running() {
    let scenario = presets::bursty_telecom();
    let dir = temp_dir("incremental");
    let mut catalog = Catalog::init(&dir).expect("init catalog");
    let shard_files = {
        let dir = dir.clone();
        move || {
            std::fs::read_dir(&dir)
                .map(|entries| {
                    entries
                        .filter_map(|e| e.ok())
                        .filter(|e| e.file_name().to_string_lossy().starts_with("shard-"))
                        .count()
                })
                .unwrap_or(0)
        }
    };
    let mut stream = ScenarioStream::new(&scenario, 3, 4_000)
        .expect("valid scenario")
        .chunk_size(128);
    let mut mid_stream_shards = 0usize;
    let mut blocks = 0usize;
    let counted = std::iter::from_fn(|| {
        let chunk = stream.next_chunk()?;
        blocks += 1;
        if blocks == 6 {
            mid_stream_shards = shard_files();
        }
        Some(chunk)
    });
    catalog
        .ingest_stream(
            swim_trace::trace::WorkloadKind::Custom(scenario.workload_label()),
            scenario.machines(),
            counted,
            &small_options(250),
        )
        .expect("ingest succeeds");
    assert!(blocks >= 7, "stream must span several chunks, got {blocks}");
    assert!(
        mid_stream_shards >= 2,
        "shards must publish mid-stream, saw {mid_stream_shards}"
    );
    assert!(shard_files() > mid_stream_shards);
    std::fs::remove_dir_all(&dir).expect("clean temp dir");
}
