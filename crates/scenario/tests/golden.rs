//! Golden pins for the scenario CLI surfaces.
//!
//! Two pins, exercised by the CI test job through the `swim-scenario`
//! binary and here through the library (both paths produce the same
//! bytes by construction):
//!
//! 1. `tests/golden/describe-bursty-telecom.txt` — the `describe`
//!    output for one preset (every preset's description is additionally
//!    checked for determinism);
//! 2. `tests/golden/compare-study.md` — the cross-scenario study over
//!    five presets at seed 42, 800 jobs per scenario.
//!
//! Regenerate after an intentional change with
//!
//! ```sh
//! SWIM_REGEN_GOLDEN=1 cargo test -p swim-scenario --test golden
//! ```

use std::path::PathBuf;
use swim_scenario::{presets, StudyOptions};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// The preset list the CI `compare` golden runs over (≥ 4 presets, per
/// the acceptance bar; covers multi-tenant and both overlays).
pub const STUDY_PRESETS: &str =
    "steady-retail,bursty-telecom,heavytail-adtech,multitenant-saas,retrystorm-fintech";

fn assert_matches_golden(name: &str, produced: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("SWIM_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, produced).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    if produced != golden {
        let diff = produced
            .lines()
            .zip(golden.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(n, (a, b))| format!("line {}: got {a:?}, golden {b:?}", n + 1))
            .unwrap_or_else(|| {
                format!(
                    "lengths differ: got {} bytes, golden {}",
                    produced.len(),
                    golden.len()
                )
            });
        panic!("{name} drifted from golden pin: {diff}");
    }
}

#[test]
fn describe_matches_golden() {
    let scenario = presets::find("bursty-telecom").expect("preset exists");
    assert_matches_golden("describe-bursty-telecom.txt", &scenario.describe());
}

#[test]
fn compare_study_matches_golden() {
    let scenarios: Vec<_> = STUDY_PRESETS
        .split(',')
        .map(|name| presets::find(name).expect("study preset exists"))
        .collect();
    assert!(
        scenarios.len() >= 4,
        "the study must span at least 4 presets"
    );
    let options = StudyOptions {
        seed: 42,
        jobs_per_scenario: 800,
        ..Default::default()
    };
    let report = swim_scenario::compare(&scenarios, &options).expect("study runs");
    let md = swim_report::markdown::render_report(&report);
    // Thread-count independence: the golden must not depend on the
    // battery's parallelism.
    let serial = swim_scenario::compare(
        &scenarios,
        &StudyOptions {
            threads: Some(1),
            ..options
        },
    )
    .expect("serial study runs");
    assert_eq!(
        md,
        swim_report::markdown::render_report(&serial),
        "study output depends on thread count"
    );
    assert_matches_golden("compare-study.md", &md);
}
