//! `swim-scenario`: the scenario library CLI.
//!
//! ```text
//! swim-scenario list
//! swim-scenario describe NAME
//! swim-scenario generate --scenario NAME --jobs N --out CATALOG
//!                        [--seed S] [--chunk C] [--jobs-per-shard N]
//! swim-scenario compare [--scenarios A,B,...] [--jobs N] [--seed S]
//!                       [--out FILE] [--format md|html]
//! ```
//!
//! `generate` streams the scenario chunk-at-a-time into a sharded
//! catalog (created if the directory holds none) — memory stays
//! O(chunk) no matter how many jobs are requested. `--jobs` is a
//! budget: very bursty scenarios emit somewhat fewer (the cap
//! truncates their peak hours); the printed stats report what actually
//! landed. `compare` runs the
//! cross-scenario study (report battery + what-if sweep) over the named
//! scenarios (default: every preset) and renders one report.
//!
//! Environment: `SWIM_SCENARIO_CHUNK` overrides the default generate
//! chunk size; `SWIM_SCENARIO_THREADS` pins the compare battery's
//! worker count (output is identical either way).

use std::process::ExitCode;
use swim_catalog::{Catalog, CatalogOptions};
use swim_scenario::{presets, StudyOptions};

const USAGE: &str = "usage:\n\
 swim-scenario list\n\
 swim-scenario describe NAME\n\
 swim-scenario generate --scenario NAME --jobs N --out CATALOG \
 [--seed S] [--chunk C] [--jobs-per-shard N]\n\
 swim-scenario compare [--scenarios A,B,...] [--jobs N] [--seed S] \
 [--out FILE] [--format md|html]\n\
 scenarios are named presets: see `swim-scenario list`";

/// CLI failures carry their exit class: malformed invocations are usage
/// errors and exit 2 with the usage text; failures of well-formed
/// commands (I/O, catalog, generation) are runtime errors and exit 1
/// without it. Both start stderr with `error: …`.
enum CliError {
    Usage(String),
    Runtime(String),
}

impl CliError {
    fn exit(self) -> ExitCode {
        match self {
            CliError::Usage(msg) => {
                eprintln!("error: {msg}\n\n{USAGE}");
                ExitCode::from(2)
            }
            CliError::Runtime(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        }
    }
}

/// Shorthand for `map_err` on scenario/catalog/I-O operations.
fn runtime(e: impl std::fmt::Display) -> CliError {
    CliError::Runtime(e.to_string())
}

#[derive(Default)]
struct Flags {
    scenario: Option<String>,
    scenarios: Option<String>,
    jobs: Option<u64>,
    seed: Option<u64>,
    chunk: Option<usize>,
    jobs_per_shard: Option<u32>,
    out: Option<String>,
    format: Option<String>,
}

/// Split option flags out of an argument stream; everything else
/// (subcommand positionals) is returned in order. Each subcommand
/// passes the flags it actually honours — anything else (misplaced or
/// unknown) is an error, never silently ignored.
fn split_flags(args: &[String], allowed: &[&'static str]) -> Result<(Vec<String>, Flags), String> {
    let mut flags = Flags::default();
    let mut positional = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut next = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        if arg.starts_with('-') && !allowed.contains(&arg.as_str()) {
            return Err(format!("{arg} does not apply to this subcommand"));
        }
        match arg.as_str() {
            "--scenario" => flags.scenario = Some(next("--scenario")?),
            "--scenarios" => flags.scenarios = Some(next("--scenarios")?),
            "--jobs" => flags.jobs = Some(parse("--jobs", &next("--jobs")?)?),
            "--seed" => flags.seed = Some(parse("--seed", &next("--seed")?)?),
            "--chunk" => flags.chunk = Some(parse("--chunk", &next("--chunk")?)?),
            "--jobs-per-shard" => {
                flags.jobs_per_shard = Some(parse("--jobs-per-shard", &next("--jobs-per-shard")?)?)
            }
            "--out" => flags.out = Some(next("--out")?),
            "--format" => flags.format = Some(next("--format")?),
            other => positional.push(other.to_owned()),
        }
    }
    Ok((positional, flags))
}

fn parse<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag} requires an integer, got {value:?}"))
}

/// Read a positive-integer environment override; unset is `None`,
/// unparsable is an error (misconfiguration should be loud, not
/// silently defaulted).
fn env_usize(name: &str) -> Result<Option<usize>, CliError> {
    match std::env::var(name) {
        Ok(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| CliError::Runtime(format!("{name} must be an integer, got {v:?}")))?;
            if n == 0 {
                return Err(CliError::Runtime(format!("{name} must be >= 1")));
            }
            Ok(Some(n))
        }
        Err(_) => Ok(None),
    }
}

fn cmd_list(args: &[String]) -> Result<(), CliError> {
    let (positional, _) = split_flags(args, &[]).map_err(CliError::Usage)?;
    if !positional.is_empty() {
        return Err(CliError::Usage("list takes no arguments".into()));
    }
    let mut table = swim_report::Table::new(vec![
        "name", "version", "industry", "tenants", "overlays", "summary",
    ]);
    for s in presets::presets() {
        let mut overlays = Vec::new();
        if s.heavy_tail.is_some() {
            overlays.push("heavy-tail");
        }
        if s.retry_storm.is_some() {
            overlays.push("retry-storm");
        }
        table.row(vec![
            s.name.clone(),
            format!("v{}", s.version),
            s.industry.clone(),
            s.tenants.len().to_string(),
            if overlays.is_empty() {
                "-".to_owned()
            } else {
                overlays.join(",")
            },
            s.summary.clone(),
        ]);
    }
    print!("{}", table.render());
    Ok(())
}

fn cmd_describe(args: &[String]) -> Result<(), CliError> {
    let (positional, _) = split_flags(args, &[]).map_err(CliError::Usage)?;
    let [name] = positional.as_slice() else {
        return Err(CliError::Usage(
            "describe takes exactly one scenario name".into(),
        ));
    };
    let scenario = presets::find(name).map_err(runtime)?;
    print!("{}", scenario.describe());
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), CliError> {
    let (positional, flags) = split_flags(
        args,
        &[
            "--scenario",
            "--jobs",
            "--out",
            "--seed",
            "--chunk",
            "--jobs-per-shard",
        ],
    )
    .map_err(CliError::Usage)?;
    if !positional.is_empty() {
        return Err(CliError::Usage(format!(
            "generate takes no positional arguments, got {positional:?}"
        )));
    }
    let name = flags
        .scenario
        .ok_or_else(|| CliError::Usage("generate requires --scenario NAME".into()))?;
    let jobs = flags
        .jobs
        .ok_or_else(|| CliError::Usage("generate requires --jobs N".into()))?;
    let dir = flags
        .out
        .ok_or_else(|| CliError::Usage("generate requires --out CATALOG".into()))?;
    let scenario = presets::find(&name).map_err(runtime)?;
    let chunk = match flags.chunk {
        Some(c) => c.max(1),
        None => env_usize("SWIM_SCENARIO_CHUNK")?.unwrap_or(swim_scenario::DEFAULT_CHUNK),
    };
    let mut options = CatalogOptions::default();
    if let Some(per_shard) = flags.jobs_per_shard {
        options.jobs_per_shard = per_shard;
    }
    // Open an existing catalog or initialize a fresh one in place.
    let mut catalog = match Catalog::open(&dir) {
        Ok(c) => c,
        Err(_) => Catalog::init(&dir).map_err(runtime)?,
    };
    let outcome = swim_scenario::generate_into_catalog(
        &scenario,
        flags.seed.unwrap_or(42),
        jobs,
        chunk,
        &mut catalog,
        &options,
    )
    .map_err(runtime)?;
    let stats = &outcome.stats;
    eprintln!(
        "generated scenario {} (v{}): {} jobs ({} retries, {} boosted) into {} shard{} at {}, generation {}",
        scenario.name,
        scenario.version,
        stats.generation.jobs,
        stats.retries,
        stats.boosted,
        outcome.ingest.shards,
        if outcome.ingest.shards == 1 { "" } else { "s" },
        catalog.dir().display(),
        catalog.generation(),
    );
    for (label, n) in &stats.per_tenant {
        eprintln!("  tenant {label}: {n} jobs");
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), CliError> {
    let (positional, flags) = split_flags(
        args,
        &["--scenarios", "--jobs", "--seed", "--out", "--format"],
    )
    .map_err(CliError::Usage)?;
    if !positional.is_empty() {
        return Err(CliError::Usage(format!(
            "compare takes no positional arguments, got {positional:?}"
        )));
    }
    let scenarios = match &flags.scenarios {
        Some(list) => list
            .split(',')
            .map(|name| presets::find(name.trim()).map_err(runtime))
            .collect::<Result<Vec<_>, _>>()?,
        None => presets::presets(),
    };
    let mut options = StudyOptions {
        seed: flags.seed.unwrap_or(42),
        jobs_per_scenario: flags.jobs.unwrap_or(2_000),
        ..Default::default()
    };
    options.threads = env_usize("SWIM_SCENARIO_THREADS")?;
    let report = swim_scenario::compare(&scenarios, &options).map_err(runtime)?;
    let rendered = match flags.format.as_deref().unwrap_or("md") {
        "md" | "markdown" => swim_report::markdown::render_report(&report),
        "html" => swim_report::html::render_report(&report),
        other => {
            return Err(CliError::Usage(format!(
                "--format must be md or html, got {other:?}"
            )))
        }
    };
    match flags.out {
        Some(path) => {
            std::fs::write(&path, &rendered).map_err(runtime)?;
            eprintln!(
                "wrote cross-scenario study over {} scenario(s) to {path}",
                scenarios.len()
            );
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return CliError::Usage("a subcommand is required".into()).exit();
    };
    // SWIM_OBS enables instrumentation (generation spans and counters).
    swim_obs::init_from_env();
    let rest = &args[1..];
    let result = match command.as_str() {
        "list" => cmd_list(rest),
        "describe" => cmd_describe(rest),
        "generate" => cmd_generate(rest),
        "compare" => cmd_compare(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => return CliError::Usage(format!("unknown subcommand {other}")).exit(),
    };
    let snap = swim_obs::snapshot();
    if let Err(e) = swim_obs::jsonl::append_env(&snap) {
        eprintln!("warning: SWIM_OBS_JSONL: {e}");
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => err.exit(),
    }
}
