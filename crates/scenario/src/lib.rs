//! # swim-scenario
//!
//! Paper-scale streaming scenario library: named, versioned workload
//! *scenarios* — compositions of the paper's seven calibrated
//! per-industry generators — generated chunk-at-a-time into live
//! catalogs with bounded memory.
//!
//! The crate layers three pieces over `swim-workloadgen`'s streaming
//! generator:
//!
//! * a **scenario model** ([`model`], [`presets`]): diurnal/bursty
//!   arrival modulation, heavy-tail data-size mixtures, multi-tenant
//!   interleaving, and failure/retry-storm overlays, each a named,
//!   versioned [`Scenario`] with per-industry presets whose parameters
//!   are cross-checked against fits of generated sample traces
//!   ([`presets::fit`]);
//! * a **streaming executor** ([`stream`]): k-way tenant merge with
//!   overlay application in emission order — deterministic per seed for
//!   any chunk size — piped through `Catalog::ingest_stream` so
//!   100M+-job traces land in sharded catalogs without ever
//!   materializing (memory is O(chunk), asserted by tests);
//! * a **cross-scenario study** ([`study`]): the scenario set fanned
//!   through the `swim-report` battery and a `Simulator::sweep` what-if
//!   grid into one golden-pinnable report.
//!
//! The `swim-scenario` binary exposes `list`, `describe`, `generate`,
//! and `compare` over this library.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod model;
pub mod presets;
pub mod stream;
pub mod study;

pub use model::{ArrivalTweak, HeavyTail, RetryStorm, Scenario, ScenarioError, Tenant};
pub use stream::{
    generate_into_catalog, GenerateOutcome, ScenarioStats, ScenarioStream, DEFAULT_CHUNK,
};
pub use study::{compare, StudyOptions};
