//! The preset scenario library: per-industry scenarios layered on the
//! paper's calibrated profiles, with arrival parameters cross-checked
//! against the bundled sample traces (see [`fit`]).
//!
//! Each preset is *versioned*: any parameter change must bump
//! `version`, so a pinned study can tell which edition it ran against.

use crate::model::{ArrivalTweak, HeavyTail, RetryStorm, Scenario, ScenarioError, Tenant};
use swim_trace::trace::WorkloadKind;
use swim_trace::Dur;

/// All presets, in stable presentation order.
pub fn presets() -> Vec<Scenario> {
    vec![
        steady_retail(),
        bursty_telecom(),
        diurnal_webmedia(),
        heavytail_adtech(),
        multitenant_saas(),
        retrystorm_fintech(),
    ]
}

/// Look a preset up by name.
pub fn find(name: &str) -> Result<Scenario, ScenarioError> {
    presets()
        .into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| ScenarioError::Unknown(name.to_owned()))
}

fn tenant(label: &str, kind: WorkloadKind, weight: f64) -> Tenant {
    Tenant {
        label: label.into(),
        kind,
        weight,
        tweak: ArrivalTweak::default(),
        sigma: None,
    }
}

/// E-commerce steady state: CC-a with its calibrated burstiness damped
/// and a pronounced evening peak — the "quiet weekday" baseline the
/// other scenarios are compared against.
pub fn steady_retail() -> Scenario {
    Scenario {
        name: "steady-retail".into(),
        version: 1,
        industry: "e-commerce".into(),
        summary: "CC-a baseline with damped burstiness and an evening peak".into(),
        days: 3.0,
        tenants: vec![Tenant {
            tweak: ArrivalTweak {
                diurnal_amplitude: Some(0.3),
                peak_hour: Some(20.0),
                burst_sigma: Some(0.8),
            },
            ..tenant("storefront", WorkloadKind::CcA, 1.0)
        }],
        heavy_tail: None,
        retry_storm: None,
    }
}

/// Telecommunications burst regime: CC-b (the burstiest calibrated
/// profile, σ = 1.6 per [`fit`] against `testdata/sample-b.swim`) with
/// the hourly-intensity σ pushed further to model flash crowds.
pub fn bursty_telecom() -> Scenario {
    Scenario {
        name: "bursty-telecom".into(),
        version: 1,
        industry: "telecommunications".into(),
        summary: "CC-b with hourly-intensity sigma raised to flash-crowd levels".into(),
        days: 3.0,
        tenants: vec![Tenant {
            tweak: ArrivalTweak {
                burst_sigma: Some(2.2),
                ..Default::default()
            },
            ..tenant("mediation", WorkloadKind::CcB, 1.0)
        }],
        heavy_tail: None,
        retry_storm: None,
    }
}

/// Web/media diurnal swing: FB-2010 with a deep day/night cycle peaking
/// in the evening — the scenario that stresses trough consolidation.
pub fn diurnal_webmedia() -> Scenario {
    Scenario {
        name: "diurnal-webmedia".into(),
        version: 1,
        industry: "web media".into(),
        summary: "FB-2010 with a deep evening-peaked day/night cycle".into(),
        days: 3.0,
        tenants: vec![Tenant {
            tweak: ArrivalTweak {
                diurnal_amplitude: Some(0.7),
                peak_hour: Some(21.0),
                ..Default::default()
            },
            ..tenant("newsfeed", WorkloadKind::Fb2010, 1.0)
        }],
        heavy_tail: None,
        retry_storm: None,
    }
}

/// Ad-tech heavy tail: CC-c with 8% of jobs boosted by a median-8x
/// lognormal data-size factor — the per-job byte distribution grows a
/// tail well past the calibrated cluster centroids.
pub fn heavytail_adtech() -> Scenario {
    Scenario {
        name: "heavytail-adtech".into(),
        version: 1,
        industry: "advertising".into(),
        summary: "CC-c with a lognormal heavy-tail boost on 8% of jobs".into(),
        days: 3.0,
        tenants: vec![tenant("attribution", WorkloadKind::CcC, 1.0)],
        heavy_tail: Some(HeavyTail {
            probability: 0.08,
            median_boost: 8.0,
            sigma: 1.5,
        }),
        retry_storm: None,
    }
}

/// Multi-tenant SaaS consolidation: three industries multiplexed onto
/// one cluster — an interactive-analytics majority (CC-e) plus retail
/// (CC-a) and telecom (CC-b) minorities with offset peak hours.
pub fn multitenant_saas() -> Scenario {
    Scenario {
        name: "multitenant-saas".into(),
        version: 1,
        industry: "software services".into(),
        summary: "CC-e, CC-a, and CC-b tenants multiplexed with offset peaks".into(),
        days: 3.0,
        tenants: vec![
            tenant("analytics", WorkloadKind::CcE, 0.5),
            Tenant {
                tweak: ArrivalTweak {
                    peak_hour: Some(20.0),
                    ..Default::default()
                },
                ..tenant("retail", WorkloadKind::CcA, 0.3)
            },
            Tenant {
                tweak: ArrivalTweak {
                    peak_hour: Some(8.0),
                    ..Default::default()
                },
                ..tenant("telecom", WorkloadKind::CcB, 0.2)
            },
        ],
        heavy_tail: None,
        retry_storm: None,
    }
}

/// Fintech retry storm: CC-d where a quarter of attempts fail and
/// re-enter the stream after a five-minute backoff, compounding up to
/// three times — the overlay that stresses queueing behaviour.
pub fn retrystorm_fintech() -> Scenario {
    Scenario {
        name: "retrystorm-fintech".into(),
        version: 1,
        industry: "financial services".into(),
        summary: "CC-d with a 25% failure rate and 5-minute retry backoff".into(),
        days: 3.0,
        tenants: vec![tenant("risk-batch", WorkloadKind::CcD, 1.0)],
        heavy_tail: None,
        retry_storm: Some(RetryStorm {
            probability: 0.25,
            max_retries: 3,
            backoff: Dur::from_mins(5),
        }),
    }
}

/// Fitting helpers: recover arrival parameters from a concrete trace's
/// hourly arrival counts. Used by the preset tests to tie the library's
/// parameter choices back to the bundled sample traces, and available
/// for calibrating custom scenarios against real traces.
pub mod fit {
    use swim_trace::Trace;

    /// Hourly arrival counts from the trace's first submit onward.
    fn hourly_counts(trace: &Trace) -> Vec<u64> {
        let Some(start) = trace.jobs().first().map(|j| j.submit) else {
            return Vec::new();
        };
        let hours = trace.span().hours() + 1;
        let mut counts = vec![0u64; hours as usize];
        let last = counts.len() - 1;
        for job in trace.jobs() {
            let h = job.submit.since(start).hours() as usize;
            counts[h.min(last)] += 1;
        }
        counts
    }

    /// Fit the ln-space σ of the hourly arrival intensity (the
    /// generator's `burst_sigma`): detrend the hourly counts by the
    /// hour-of-day mean profile (removing the diurnal cycle), then take
    /// the standard deviation of the ln residuals over non-empty hours.
    pub fn burst_sigma(trace: &Trace) -> f64 {
        let counts = hourly_counts(trace);
        let mut by_hour = [(0.0f64, 0u32); 24];
        for (h, &c) in counts.iter().enumerate() {
            let slot = &mut by_hour[h % 24];
            slot.0 += c as f64;
            slot.1 += 1;
        }
        let residuals: Vec<f64> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .filter_map(|(h, &c)| {
                let (sum, n) = by_hour[h % 24];
                let mean = sum / n as f64;
                (mean > 0.0).then(|| (c as f64 / mean).ln())
            })
            .collect();
        std_dev(&residuals)
    }

    /// Fit the diurnal amplitude: build the 24-bin hour-of-day mean
    /// profile and return `(max − min) / (max + min)` — exact for the
    /// generator's `1 + a·sin(...)` modulation in the noise-free limit.
    pub fn diurnal_amplitude(trace: &Trace) -> f64 {
        let counts = hourly_counts(trace);
        let mut by_hour = [(0.0f64, 0u32); 24];
        for (h, &c) in counts.iter().enumerate() {
            let slot = &mut by_hour[h % 24];
            slot.0 += c as f64;
            slot.1 += 1;
        }
        let means: Vec<f64> = by_hour
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(sum, n)| sum / *n as f64)
            .collect();
        let (Some(max), Some(min)) = (
            means.iter().cloned().reduce(f64::max),
            means.iter().cloned().reduce(f64::min),
        ) else {
            return 0.0;
        };
        if max + min == 0.0 {
            0.0
        } else {
            (max - min) / (max + min)
        }
    }

    fn std_dev(xs: &[f64]) -> f64 {
        if xs.len() < 2 {
            return 0.0;
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        var.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn every_preset_is_valid_and_uniquely_named() {
        let all = presets();
        assert!(all.len() >= 4, "the study needs at least four presets");
        let mut names = HashSet::new();
        for s in &all {
            s.validate().expect("preset must validate");
            assert!(names.insert(s.name.clone()), "duplicate name {}", s.name);
            assert!(s.version >= 1);
            assert!(!s.industry.is_empty() && !s.summary.is_empty());
        }
    }

    #[test]
    fn find_round_trips_and_rejects_unknown() {
        for s in presets() {
            assert_eq!(find(&s.name).expect("known preset").name, s.name);
        }
        assert!(matches!(find("no-such"), Err(ScenarioError::Unknown(_))));
    }

    /// Tie the preset parameter choices back to the generators they
    /// modulate: fitting a freshly generated CC-b trace must recover a
    /// burstiness in the calibrated range, and the bursty-telecom
    /// preset must sit *above* it (that is the point of the preset).
    /// The bundled `testdata/` samples are generated from these same
    /// profiles (see `examples/sample_traces.rs`), so this doubles as
    /// the fit-versus-samples check without a file dependency.
    #[test]
    fn preset_burstiness_sits_above_the_calibrated_fit() {
        use swim_trace::trace::WorkloadKind;
        use swim_workloadgen::{GeneratorConfig, WorkloadGenerator};
        let trace = WorkloadGenerator::new(
            GeneratorConfig::new(WorkloadKind::CcB)
                .scale(0.1)
                .days(2.0)
                .seed(13),
        )
        .generate();
        let fitted = fit::burst_sigma(&trace);
        assert!(
            (0.4..3.5).contains(&fitted),
            "fitted CC-b burst sigma {fitted} outside the plausible band"
        );
        let preset = bursty_telecom();
        let tweak = preset.tenants[0].tweak.burst_sigma.expect("preset tweak");
        assert!(
            tweak > fitted * 0.9,
            "bursty-telecom sigma {tweak} should exceed the fitted {fitted}"
        );
    }

    #[test]
    fn diurnal_fit_recovers_a_deep_cycle() {
        use swim_trace::trace::WorkloadKind;
        use swim_workloadgen::{GeneratorConfig, WorkloadGenerator};
        // A calm, strongly diurnal generator: the fitted amplitude must
        // land near the configured one, and well above a flat profile.
        let mut profile = swim_workloadgen::profiles::WorkloadProfile::for_kind(&WorkloadKind::CcE)
            .expect("calibrated profile");
        profile.arrival.diurnal_amplitude = 0.7;
        profile.arrival.burst_sigma = 0.1;
        let trace = WorkloadGenerator::from_profile(
            GeneratorConfig::new(WorkloadKind::CcE)
                .scale(0.3)
                .days(4.0)
                .seed(7),
            profile,
        )
        .generate();
        let fitted = fit::diurnal_amplitude(&trace);
        assert!(
            fitted > 0.35,
            "fitted amplitude {fitted} too shallow for a 0.7 cycle"
        );
    }
}
