//! Streaming scenario execution: turn a [`Scenario`] into a
//! submit-ordered, chunk-at-a-time job stream with bounded memory.
//!
//! Each tenant runs its own [`StreamingGenerator`] (itself O(chunk));
//! the scenario k-way-merges the tenant streams by submit time, applies
//! the heavy-tail and retry-storm overlays *in emission order* (so the
//! output is bit-identical for a given seed regardless of chunk size),
//! and reassigns sequential job ids. Pending retries live in a bounded
//! binary-heap reorder buffer — when it fills, the storm saturates and
//! further retries are dropped and counted rather than buffered, so
//! memory stays O(buffer), never O(trace).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use swim_catalog::{Catalog, CatalogOptions, IngestStats};
use swim_obs::Counter;
use swim_trace::trace::WorkloadKind;
use swim_trace::{Dur, Job, JobId, PathId, Timestamp, Trace};
use swim_workloadgen::dist::LogNormal;
use swim_workloadgen::files::PopulationBounds;
use swim_workloadgen::jobtypes::{derive_map_tasks, derive_reduce_tasks};
use swim_workloadgen::profiles::WorkloadProfile;
use swim_workloadgen::{GenerationStats, GeneratorConfig, StreamingGenerator};

use crate::model::{HeavyTail, RetryStorm, Scenario, ScenarioError};

/// Default chunk size for scenario streams (jobs per yielded block).
pub const DEFAULT_CHUNK: usize = 8_192;

/// Capacity of the retry reorder buffer: the hard bound on pending
/// resubmissions held in memory.
pub const REORDER_CAP: usize = 4_096;

/// Inner chunk size used when pulling from each tenant's generator.
const TENANT_CHUNK: usize = 512;

static SCENARIO_JOBS: Counter = Counter::new("scenario.jobs");
static SCENARIO_RETRIES: Counter = Counter::new("scenario.retries");
static SCENARIO_BOOSTED: Counter = Counter::new("scenario.boosted");

/// Running statistics of a scenario stream — the scenario's *declared*
/// statistics that a catalog built from the stream must agree with.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioStats {
    /// Aggregate stats over every emitted job (originals and retries).
    pub generation: GenerationStats,
    /// Original jobs emitted per tenant, in tenant order.
    pub per_tenant: Vec<(String, u64)>,
    /// Jobs whose data sizes were boosted by the heavy-tail overlay.
    pub boosted: u64,
    /// Retry resubmissions emitted.
    pub retries: u64,
    /// Retries dropped because the reorder buffer was saturated.
    pub retries_dropped: u64,
    /// High-water mark of the reorder buffer.
    pub peak_pending: usize,
}

/// One tenant's live generator plus a small pull buffer.
struct TenantStream {
    label: String,
    generator: StreamingGenerator,
    buffer: VecDeque<Job>,
    exhausted: bool,
}

impl TenantStream {
    fn peek(&mut self) -> Option<&Job> {
        self.refill();
        self.buffer.front()
    }

    fn pop(&mut self) -> Option<Job> {
        self.refill();
        self.buffer.pop_front()
    }

    fn refill(&mut self) {
        while self.buffer.is_empty() && !self.exhausted {
            match self.generator.next_chunk() {
                Some(chunk) => self.buffer.extend(chunk),
                None => self.exhausted = true,
            }
        }
    }
}

/// A pending retry, ordered by (submit, insertion sequence) so the heap
/// pops in deterministic submit order.
struct Pending {
    submit: Timestamp,
    seq: u64,
    job: Job,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        (self.submit, self.seq) == (other.submit, other.seq)
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.submit, other.seq).cmp(&(self.submit, self.seq))
    }
}

/// The streaming executor for one scenario; see the module docs.
///
/// Implements `Iterator<Item = Vec<Job>>`: chunks of at most
/// `chunk_size` jobs, globally submit-ordered with sequential ids, and
/// deterministic per seed regardless of chunk size.
pub struct ScenarioStream {
    tenants: Vec<TenantStream>,
    heavy_tail: Option<(HeavyTail, LogNormal)>,
    retry_storm: Option<RetryStorm>,
    overlay_rng: StdRng,
    pending: BinaryHeap<Pending>,
    pending_seq: u64,
    tenant_count: u64,
    next_id: u64,
    chunk_size: usize,
    stats: ScenarioStats,
    machines: u32,
    kind: WorkloadKind,
}

impl ScenarioStream {
    /// Build the stream: validate the scenario, split the job budget
    /// over tenants by weight (largest-remainder rounding), and derive
    /// each tenant's generator scale so its share arrives spread over
    /// the scenario's full `days` window.
    ///
    /// `total_jobs` is a *budget*: each tenant's arrival process is
    /// capped at its share, so very bursty scenarios (whose arrival
    /// mass concentrates in rare peak hours that the cap truncates)
    /// emit fewer jobs than the budget. [`ScenarioStats`] always
    /// reports what was actually emitted.
    pub fn new(scenario: &Scenario, seed: u64, total_jobs: u64) -> Result<Self, ScenarioError> {
        scenario.validate()?;
        let targets = split_budget(scenario, total_jobs);
        let mut tenants = Vec::with_capacity(scenario.tenants.len());
        for (index, (tenant, target)) in scenario.tenants.iter().zip(&targets).enumerate() {
            let mut profile = WorkloadProfile::for_kind(&tenant.kind)
                .expect("validate() checked every tenant kind");
            let tweak = &tenant.tweak;
            if let Some(a) = tweak.diurnal_amplitude {
                profile.arrival.diurnal_amplitude = a;
            }
            if let Some(p) = tweak.peak_hour {
                profile.arrival.peak_hour = p;
            }
            if let Some(s) = tweak.burst_sigma {
                profile.arrival.burst_sigma = s;
            }
            // Scale so the expected job count over `days` equals the
            // tenant's target; max_jobs caps the Poisson overshoot.
            let scale =
                *target as f64 * profile.length_days / (profile.total_jobs as f64 * scenario.days);
            if *target == 0 || scale <= 0.0 {
                continue;
            }
            let mut config = GeneratorConfig::new(tenant.kind.clone())
                .scale(scale)
                .days(scenario.days)
                .seed(derive_seed(seed, index as u64 + 1));
            if let Some(s) = tenant.sigma {
                config = config.sigma(s);
            }
            let generator = StreamingGenerator::from_profile(config, profile)?
                .chunk_size(TENANT_CHUNK)
                .max_jobs(*target);
            tenants.push(TenantStream {
                label: tenant.label.clone(),
                generator,
                buffer: VecDeque::new(),
                exhausted: false,
            });
        }
        let heavy_tail = scenario.heavy_tail.clone().map(|ht| {
            let dist = LogNormal::from_median(ht.median_boost, ht.sigma);
            (ht, dist)
        });
        let stats = ScenarioStats {
            per_tenant: tenants.iter().map(|t| (t.label.clone(), 0)).collect(),
            ..Default::default()
        };
        Ok(ScenarioStream {
            tenant_count: tenants.len().max(1) as u64,
            tenants,
            heavy_tail,
            retry_storm: scenario.retry_storm.clone(),
            overlay_rng: StdRng::seed_from_u64(derive_seed(seed, 0)),
            pending: BinaryHeap::new(),
            pending_seq: 0,
            next_id: 0,
            chunk_size: DEFAULT_CHUNK,
            stats,
            machines: scenario.machines(),
            kind: WorkloadKind::Custom(scenario.workload_label()),
        })
    }

    /// Set the chunk size (jobs per yielded block); clamped to >= 1.
    pub fn chunk_size(mut self, n: usize) -> Self {
        self.chunk_size = n.max(1);
        self
    }

    /// Cap the per-tenant file-population state (forwarding
    /// [`PopulationBounds`] to every tenant generator). Only meaningful
    /// before any chunk is pulled.
    pub fn population_bounds(mut self, bounds: PopulationBounds) -> Self {
        self.tenants = self
            .tenants
            .into_iter()
            .map(|t| TenantStream {
                generator: t.generator.population_bounds(bounds),
                ..t
            })
            .collect();
        self
    }

    /// Statistics over everything emitted so far.
    pub fn stats(&self) -> &ScenarioStats {
        &self.stats
    }

    /// Nominal machine count of the scenario's consolidated cluster.
    pub fn machines(&self) -> u32 {
        self.machines
    }

    /// The workload kind stamped on generated jobs' traces/shards.
    pub fn kind(&self) -> &WorkloadKind {
        &self.kind
    }

    /// Bytes of resident generator state: tenant generators and pull
    /// buffers plus the retry reorder buffer. Constant in trace length —
    /// the O(chunk)-not-O(trace) figure the memory tests pin.
    pub fn resident_bytes(&self) -> usize {
        let tenants: usize = self
            .tenants
            .iter()
            .map(|t| {
                t.generator.resident_bytes() + t.buffer.capacity() * std::mem::size_of::<Job>()
            })
            .sum();
        tenants + self.pending.capacity() * std::mem::size_of::<Pending>()
    }

    /// Next chunk of at most `chunk_size` jobs; `None` when the
    /// scenario (including all pending retries) is exhausted.
    pub fn next_chunk(&mut self) -> Option<Vec<Job>> {
        let _span = swim_obs::span("scenario.chunk");
        let mut chunk = Vec::new();
        while chunk.len() < self.chunk_size {
            match self.next_job() {
                Some(job) => chunk.push(job),
                None => break,
            }
        }
        if chunk.is_empty() {
            None
        } else {
            SCENARIO_JOBS.add(chunk.len() as u64);
            Some(chunk)
        }
    }

    fn next_job(&mut self) -> Option<Job> {
        // Earliest tenant head, by (submit, tenant index) for stability.
        let mut next_tenant: Option<(Timestamp, usize)> = None;
        for i in 0..self.tenants.len() {
            if let Some(job) = self.tenants[i].peek() {
                let key = (job.submit, i);
                if next_tenant.is_none_or(|cur| key < cur) {
                    next_tenant = Some(key);
                }
            }
        }
        // Flush any retry due before (or at) the next original.
        if let Some(p) = self.pending.peek() {
            let due = match next_tenant {
                Some((submit, _)) => p.submit <= submit,
                None => true,
            };
            if due {
                let p = self.pending.pop().expect("peeked above");
                self.stats.retries += 1;
                SCENARIO_RETRIES.incr();
                return Some(self.finalize(p.job));
            }
        }
        let (_, index) = next_tenant?;
        let mut job = self.tenants[index].pop().expect("peeked above");
        self.apply_tenant(index, &mut job);
        self.apply_heavy_tail(&mut job);
        self.schedule_retries(&job);
        self.stats.per_tenant[index].1 += 1;
        Some(self.finalize(job))
    }

    /// Namespace the tenant's file paths (collision-free remap: old id
    /// times tenant count plus tenant index) and prefix its job names.
    fn apply_tenant(&mut self, index: usize, job: &mut Job) {
        let n = self.tenant_count;
        let remap = |p: &mut PathId| *p = PathId(p.0.wrapping_mul(n).wrapping_add(index as u64));
        job.input_paths.iter_mut().for_each(remap);
        job.output_paths.iter_mut().for_each(remap);
        if !job.name.is_empty() {
            job.name = format!("{}:{}", self.tenants[index].label, job.name);
        }
    }

    /// Heavy-tail overlay: boost data sizes and task-times by one
    /// lognormal factor, then re-derive task counts so the job stays
    /// schema-consistent. Draws happen in emission order, so the stream
    /// stays deterministic for any chunking.
    fn apply_heavy_tail(&mut self, job: &mut Job) {
        let Some((ht, dist)) = &self.heavy_tail else {
            return;
        };
        if !self.overlay_rng.random_bool(ht.probability) {
            return;
        }
        let factor = dist.sample(&mut self.overlay_rng);
        job.input = job.input.scale(factor);
        job.shuffle = job.shuffle.scale(factor);
        job.output = job.output.scale(factor);
        job.map_task_time = job.map_task_time.scale(factor);
        job.reduce_task_time = job.reduce_task_time.scale(factor);
        job.map_tasks = derive_map_tasks(job.input, job.map_task_time, job.duration);
        job.reduce_tasks = derive_reduce_tasks(job.shuffle, job.reduce_task_time);
        self.stats.boosted += 1;
        SCENARIO_BOOSTED.incr();
    }

    /// Retry-storm overlay: chain failure draws (attempt k fails with
    /// probability p, capped) and buffer each resubmission `k·backoff`
    /// after the original, dropping (and counting) retries when the
    /// reorder buffer is saturated.
    fn schedule_retries(&mut self, job: &Job) {
        let Some(rs) = &self.retry_storm else {
            return;
        };
        for attempt in 1..=rs.max_retries {
            if !self.overlay_rng.random_bool(rs.probability) {
                break;
            }
            if self.pending.len() >= REORDER_CAP {
                self.stats.retries_dropped += 1;
                continue;
            }
            let mut retry = job.clone();
            retry.submit = job.submit + Dur::from_secs(rs.backoff.secs() * attempt as u64);
            self.pending.push(Pending {
                submit: retry.submit,
                seq: self.pending_seq,
                job: retry,
            });
            self.pending_seq += 1;
            self.stats.peak_pending = self.stats.peak_pending.max(self.pending.len());
        }
    }

    fn finalize(&mut self, mut job: Job) -> Job {
        job.id = JobId(self.next_id);
        self.next_id += 1;
        self.stats.generation.observe(&job);
        job
    }

    /// Drain the whole stream into an in-memory [`Trace`] (for the
    /// comparison study; paper-scale generation should stream into a
    /// catalog instead — see [`generate_into_catalog`]).
    pub fn collect_trace(mut self) -> Result<(Trace, ScenarioStats), ScenarioError> {
        let mut jobs = Vec::new();
        while let Some(chunk) = self.next_chunk() {
            jobs.extend(chunk);
        }
        let trace = Trace::new(self.kind.clone(), self.machines, jobs).map_err(|e| {
            ScenarioError::Invalid {
                scenario: self.kind.label().to_owned(),
                message: format!("generated trace failed validation: {e}"),
            }
        })?;
        Ok((trace, self.stats))
    }
}

impl Iterator for ScenarioStream {
    type Item = Vec<Job>;

    fn next(&mut self) -> Option<Vec<Job>> {
        self.next_chunk()
    }
}

/// Outcome of streaming a scenario into a catalog.
#[derive(Debug, Clone)]
pub struct GenerateOutcome {
    /// Shards/jobs/bytes written by the catalog.
    pub ingest: IngestStats,
    /// The stream's declared statistics (catalog `summary()` must agree).
    pub stats: ScenarioStats,
}

/// Stream `total_jobs` jobs of `scenario` into an open catalog without
/// ever materializing the trace: memory stays O(chunk) while shards are
/// published incrementally (the 100M-job path).
pub fn generate_into_catalog(
    scenario: &Scenario,
    seed: u64,
    total_jobs: u64,
    chunk_size: usize,
    catalog: &mut Catalog,
    options: &CatalogOptions,
) -> Result<GenerateOutcome, ScenarioError> {
    let mut stream = ScenarioStream::new(scenario, seed, total_jobs)?.chunk_size(chunk_size);
    let kind = stream.kind().clone();
    let machines = stream.machines();
    let ingest = catalog
        .ingest_stream(kind, machines, &mut stream, options)
        .map_err(|e| ScenarioError::Catalog(e.to_string()))?;
    Ok(GenerateOutcome {
        ingest,
        stats: stream.stats().clone(),
    })
}

/// Split `total` jobs over tenants by weight using largest-remainder
/// rounding — deterministic, sums exactly to `total`.
fn split_budget(scenario: &Scenario, total: u64) -> Vec<u64> {
    let sum: f64 = scenario.tenants.iter().map(|t| t.weight).sum();
    let mut shares: Vec<(usize, u64, f64)> = scenario
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let exact = t.weight / sum * total as f64;
            (i, exact.floor() as u64, exact - exact.floor())
        })
        .collect();
    let assigned: u64 = shares.iter().map(|s| s.1).sum();
    // The sum of floors is short by fewer than one job per tenant.
    let remainder = total.saturating_sub(assigned) as usize;
    // Largest fractional part first; ties broken by tenant order.
    let mut order: Vec<usize> = (0..shares.len()).collect();
    order.sort_by(|&a, &b| {
        shares[b]
            .2
            .partial_cmp(&shares[a].2)
            .unwrap_or(Ordering::Equal)
            .then(a.cmp(&b))
    });
    for &i in order.iter().take(remainder) {
        shares[i].1 += 1;
    }
    shares.into_iter().map(|s| s.1).collect()
}

/// Derive an independent 64-bit stream seed from a master seed
/// (splitmix64 finalizer — same construction the generator uses for its
/// arrival/body split).
fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn chunked(scenario: &Scenario, seed: u64, jobs: u64, chunk: usize) -> Vec<Job> {
        ScenarioStream::new(scenario, seed, jobs)
            .expect("preset is valid")
            .chunk_size(chunk)
            .flatten()
            .collect()
    }

    #[test]
    fn stream_is_sorted_with_sequential_ids() {
        for preset in presets::presets() {
            let jobs = chunked(&preset, 42, 600, 128);
            assert!(!jobs.is_empty(), "{} produced nothing", preset.name);
            assert!(
                jobs.windows(2).all(|w| w[0].submit <= w[1].submit),
                "{} not submit-ordered",
                preset.name
            );
            for (i, job) in jobs.iter().enumerate() {
                assert_eq!(
                    job.id,
                    JobId(i as u64),
                    "{} ids not sequential",
                    preset.name
                );
                job.validate().expect("every job valid");
            }
        }
    }

    #[test]
    fn chunk_size_never_changes_the_stream() {
        let preset = presets::multitenant_saas();
        let fine = chunked(&preset, 7, 500, 1);
        for chunk in [7usize, 64, 4096] {
            assert_eq!(
                fine,
                chunked(&preset, 7, 500, chunk),
                "chunk {chunk} diverged"
            );
        }
    }

    #[test]
    fn retry_storm_emits_retries_and_stays_bounded() {
        let preset = presets::retrystorm_fintech();
        let mut stream = ScenarioStream::new(&preset, 11, 1_500).expect("valid");
        let mut total = 0usize;
        while let Some(chunk) = stream.next_chunk() {
            total += chunk.len();
        }
        let stats = stream.stats();
        assert!(stats.retries > 0, "a 25% storm must emit retries");
        assert!(stats.peak_pending <= REORDER_CAP);
        assert_eq!(stats.generation.jobs as usize, total);
        let originals: u64 = stats.per_tenant.iter().map(|(_, n)| n).sum();
        assert_eq!(originals + stats.retries, stats.generation.jobs);
    }

    #[test]
    fn heavy_tail_boosts_a_plausible_fraction() {
        let preset = presets::heavytail_adtech();
        let mut stream = ScenarioStream::new(&preset, 3, 2_000).expect("valid");
        while stream.next_chunk().is_some() {}
        let stats = stream.stats();
        let frac = stats.boosted as f64 / stats.generation.jobs as f64;
        assert!(
            (0.04..0.14).contains(&frac),
            "boosted fraction {frac} far from probability 0.08"
        );
    }

    #[test]
    fn multitenant_split_respects_weights_and_remaps_paths() {
        let preset = presets::multitenant_saas();
        let mut stream = ScenarioStream::new(&preset, 5, 2_000).expect("valid");
        let jobs: Vec<Job> = (&mut stream).flatten().collect();
        let stats = stream.stats();
        let total: u64 = stats.per_tenant.iter().map(|(_, n)| n).sum();
        assert_eq!(total as usize, jobs.len());
        for ((label, n), tenant) in stats.per_tenant.iter().zip(&preset.tenants) {
            assert_eq!(label, &tenant.label);
            let share = *n as f64 / total as f64;
            let weight: f64 = preset.tenants.iter().map(|t| t.weight).sum();
            let expect = tenant.weight / weight;
            assert!(
                (share - expect).abs() < 0.1,
                "tenant {label} share {share} far from {expect}"
            );
        }
        // Tenant-labelled names show every tenant reached the stream.
        for tenant in &preset.tenants {
            let prefix = format!("{}:", tenant.label);
            assert!(
                jobs.iter().any(|j| j.name.starts_with(&prefix)),
                "no jobs named for tenant {}",
                tenant.label
            );
        }
    }

    #[test]
    fn budget_split_is_exact() {
        let preset = presets::multitenant_saas();
        let targets = split_budget(&preset, 1_000);
        assert_eq!(targets.iter().sum::<u64>(), 1_000);
        assert_eq!(targets.len(), preset.tenants.len());
        let targets = split_budget(&preset, 1);
        assert_eq!(targets.iter().sum::<u64>(), 1);
    }

    #[test]
    fn resident_state_is_constant_in_stream_length() {
        let preset = presets::bursty_telecom();
        let bounds = PopulationBounds {
            max_files: 256,
            reserved_files: 32,
            max_outputs: 64,
            max_access_log: 64,
        };
        let measure = |jobs: u64| {
            let mut stream = ScenarioStream::new(&preset, 9, jobs)
                .expect("valid")
                .chunk_size(256)
                .population_bounds(bounds);
            while stream.next_chunk().is_some() {}
            (stream.stats().generation.jobs, stream.resident_bytes())
        };
        let (short_jobs, short_bytes) = measure(2_000);
        let (long_jobs, long_bytes) = measure(10_000);
        assert!(long_jobs > short_jobs * 3, "streams must differ in length");
        assert_eq!(
            short_bytes, long_bytes,
            "resident bytes must not grow with stream length"
        );
    }

    #[test]
    fn stats_declare_exactly_what_was_emitted() {
        let preset = presets::steady_retail();
        let mut stream = ScenarioStream::new(&preset, 21, 800).expect("valid");
        let jobs: Vec<Job> = (&mut stream).flatten().collect();
        let stats = stream.stats();
        assert_eq!(stats.generation.jobs as usize, jobs.len());
        let bytes: swim_trace::DataSize = jobs.iter().map(|j| j.total_io()).sum();
        assert_eq!(stats.generation.bytes_moved, bytes);
        assert_eq!(
            stats.generation.span(),
            jobs.last().expect("nonempty").submit.since(jobs[0].submit)
        );
    }
}
