//! The scenario model: a named, versioned composition of the paper's
//! calibrated per-workload generators.
//!
//! A [`Scenario`] layers three orthogonal knobs on top of the Table 1/2
//! profiles in `swim-workloadgen`:
//!
//! * **arrival modulation** — per-tenant overrides of the diurnal
//!   amplitude, peak hour, and burstiness σ of the arrival process
//!   ([`ArrivalTweak`]);
//! * **heavy-tail data-size mixtures** — a lognormal boost applied to a
//!   random subset of jobs, thickening the upper tail of the per-job
//!   data-size distribution beyond the calibrated cluster centroids
//!   ([`HeavyTail`]);
//! * **failure/retry-storm overlays** — failed attempts re-enter the
//!   submission stream after a fixed backoff, bounded by a reorder
//!   buffer so memory stays O(buffer), not O(trace) ([`RetryStorm`]).
//!
//! Multi-tenancy falls out of the tenant list: each [`Tenant`] is an
//! independent streaming generator over one of the seven studied
//! workloads, and the scenario interleaves them into a single
//! submit-ordered stream.

use std::fmt;
use swim_trace::trace::WorkloadKind;
use swim_trace::Dur;
use swim_workloadgen::profiles::WorkloadProfile;
use swim_workloadgen::GeneratorError;

/// Errors from scenario validation, lookup, or generation.
#[derive(Debug)]
pub enum ScenarioError {
    /// No scenario with this name exists in the preset library.
    Unknown(String),
    /// A scenario failed its own structural validation.
    Invalid {
        /// Scenario name.
        scenario: String,
        /// What is wrong with it.
        message: String,
    },
    /// The underlying workload generator rejected a derived config.
    Generator(GeneratorError),
    /// Catalog ingestion failed while streaming a scenario to disk.
    Catalog(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Unknown(name) => {
                write!(f, "unknown scenario {name:?} (see `swim-scenario list`)")
            }
            ScenarioError::Invalid { scenario, message } => {
                write!(f, "invalid scenario {scenario:?}: {message}")
            }
            ScenarioError::Generator(e) => write!(f, "generator: {e}"),
            ScenarioError::Catalog(e) => write!(f, "catalog: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<GeneratorError> for ScenarioError {
    fn from(e: GeneratorError) -> Self {
        ScenarioError::Generator(e)
    }
}

/// Per-tenant overrides of the profile's [`ArrivalParams`] — `None`
/// keeps the calibrated value.
///
/// [`ArrivalParams`]: swim_workloadgen::profiles::ArrivalParams
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ArrivalTweak {
    /// Diurnal amplitude override, `[0, 1)`.
    pub diurnal_amplitude: Option<f64>,
    /// Peak hour override, `[0, 24)`.
    pub peak_hour: Option<f64>,
    /// Burstiness σ override (ln-space σ of hourly intensity), `>= 0`.
    pub burst_sigma: Option<f64>,
}

impl ArrivalTweak {
    fn validate(&self) -> Result<(), String> {
        if let Some(a) = self.diurnal_amplitude {
            if !a.is_finite() || !(0.0..1.0).contains(&a) {
                return Err(format!("diurnal_amplitude {a} outside [0, 1)"));
            }
        }
        if let Some(p) = self.peak_hour {
            if !p.is_finite() || !(0.0..24.0).contains(&p) {
                return Err(format!("peak_hour {p} outside [0, 24)"));
            }
        }
        if let Some(s) = self.burst_sigma {
            if !s.is_finite() || s < 0.0 {
                return Err(format!("burst_sigma {s} must be finite and >= 0"));
            }
        }
        Ok(())
    }
}

/// One tenant: a share of the scenario's job budget generated from one
/// of the seven calibrated workload profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct Tenant {
    /// Display label, also used to namespace the tenant's file paths.
    pub label: String,
    /// Which calibrated workload drives this tenant.
    pub kind: WorkloadKind,
    /// Relative share of the scenario's total job budget (normalized
    /// over all tenants; must be positive and finite).
    pub weight: f64,
    /// Arrival-process overrides.
    pub tweak: ArrivalTweak,
    /// Within-cluster jitter σ override (`None` keeps the generator
    /// default).
    pub sigma: Option<f64>,
}

/// Heavy-tail data-size mixture: with probability `probability`, a
/// job's input/shuffle/output (and task-times, to keep compute
/// proportional to data) are multiplied by a lognormal factor with the
/// given median and ln-space σ, and its task counts are re-derived.
#[derive(Debug, Clone, PartialEq)]
pub struct HeavyTail {
    /// Fraction of jobs boosted, `[0, 1]`.
    pub probability: f64,
    /// Median multiplicative boost (`> 1` thickens the tail).
    pub median_boost: f64,
    /// ln-space σ of the boost factor, `>= 0`.
    pub sigma: f64,
}

/// Failure/retry-storm overlay: each emitted job's attempt fails with
/// probability `probability`; every failed attempt re-enters the stream
/// `backoff` later (up to `max_retries` resubmissions, each of which
/// can fail again). Pending retries live in a bounded reorder buffer —
/// when it is full the storm saturates and further retries are dropped
/// (and counted) rather than buffered.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryStorm {
    /// Per-attempt failure probability, `[0, 1)`.
    pub probability: f64,
    /// Maximum resubmissions per original job, `>= 1`.
    pub max_retries: u32,
    /// Delay between a failed attempt and its resubmission.
    pub backoff: Dur,
}

/// A named, versioned workload scenario: tenants plus overlays.
///
/// Scenarios are pure descriptions — [`ScenarioStream`] turns one into
/// jobs, [`describe`](Scenario::describe) renders the stable text form
/// pinned by the CLI goldens.
///
/// [`ScenarioStream`]: crate::stream::ScenarioStream
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Unique name (the CLI lookup key).
    pub name: String,
    /// Version counter; bump on any parameter change so downstream
    /// studies can tell which edition of a scenario they pinned.
    pub version: u32,
    /// Industry this scenario imitates (the paper's cross-industry
    /// framing: e-commerce, telecom, media, …).
    pub industry: String,
    /// One-line description.
    pub summary: String,
    /// Trace length in days.
    pub days: f64,
    /// Tenants interleaved into the stream (at least one).
    pub tenants: Vec<Tenant>,
    /// Optional heavy-tail data-size mixture.
    pub heavy_tail: Option<HeavyTail>,
    /// Optional failure/retry-storm overlay.
    pub retry_storm: Option<RetryStorm>,
}

impl Scenario {
    /// Structural validation: weights, day count, overlay parameters,
    /// and that every tenant maps to a calibrated profile.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let fail = |message: String| ScenarioError::Invalid {
            scenario: self.name.clone(),
            message,
        };
        if self.tenants.is_empty() {
            return Err(fail("a scenario needs at least one tenant".into()));
        }
        if !self.days.is_finite() || self.days <= 0.0 {
            return Err(fail(format!("days {} must be finite and > 0", self.days)));
        }
        for tenant in &self.tenants {
            if !tenant.weight.is_finite() || tenant.weight <= 0.0 {
                return Err(fail(format!(
                    "tenant {:?} weight {} must be finite and > 0",
                    tenant.label, tenant.weight
                )));
            }
            if WorkloadProfile::for_kind(&tenant.kind).is_none() {
                return Err(fail(format!(
                    "tenant {:?} kind {:?} has no calibrated profile",
                    tenant.label, tenant.kind
                )));
            }
            if let Some(s) = tenant.sigma {
                if !s.is_finite() || s < 0.0 {
                    return Err(fail(format!(
                        "tenant {:?} sigma {s} must be finite and >= 0",
                        tenant.label
                    )));
                }
            }
            tenant
                .tweak
                .validate()
                .map_err(|m| fail(format!("tenant {:?}: {m}", tenant.label)))?;
        }
        if let Some(ht) = &self.heavy_tail {
            if !ht.probability.is_finite() || !(0.0..=1.0).contains(&ht.probability) {
                return Err(fail(format!(
                    "heavy_tail probability {} outside [0, 1]",
                    ht.probability
                )));
            }
            if !ht.median_boost.is_finite() || ht.median_boost <= 0.0 {
                return Err(fail(format!(
                    "heavy_tail median_boost {} must be finite and > 0",
                    ht.median_boost
                )));
            }
            if !ht.sigma.is_finite() || ht.sigma < 0.0 {
                return Err(fail(format!(
                    "heavy_tail sigma {} must be finite and >= 0",
                    ht.sigma
                )));
            }
        }
        if let Some(rs) = &self.retry_storm {
            if !rs.probability.is_finite() || !(0.0..1.0).contains(&rs.probability) {
                return Err(fail(format!(
                    "retry_storm probability {} outside [0, 1)",
                    rs.probability
                )));
            }
            if rs.max_retries == 0 {
                return Err(fail("retry_storm max_retries must be >= 1".into()));
            }
        }
        Ok(())
    }

    /// Nominal cluster size: the consolidated cluster is sized by its
    /// largest tenant (the smaller tenants multiplex into its troughs).
    pub fn machines(&self) -> u32 {
        self.tenants
            .iter()
            .filter_map(|t| WorkloadProfile::for_kind(&t.kind))
            .map(|p| p.machines)
            .max()
            .unwrap_or(0)
    }

    /// The workload label stamped on traces and catalog shards
    /// generated from this scenario.
    pub fn workload_label(&self) -> String {
        format!("scenario:{}", self.name)
    }

    /// Deterministic, human-readable description — the exact text the
    /// `swim-scenario describe` golden pins. Ends with a newline.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("scenario: {} (v{})\n", self.name, self.version));
        out.push_str(&format!("industry: {}\n", self.industry));
        out.push_str(&format!("summary:  {}\n", self.summary));
        out.push_str(&format!(
            "days:     {}    machines: {}\n",
            self.days,
            self.machines()
        ));
        let total: f64 = self.tenants.iter().map(|t| t.weight).sum();
        out.push_str("tenants:\n");
        for t in &self.tenants {
            let mut line = format!(
                "  - {}  kind={}  share={:.2}",
                t.label,
                t.kind.label(),
                t.weight / total
            );
            if let Some(a) = t.tweak.diurnal_amplitude {
                line.push_str(&format!("  diurnal={a}"));
            }
            if let Some(p) = t.tweak.peak_hour {
                line.push_str(&format!("  peak_hour={p}"));
            }
            if let Some(s) = t.tweak.burst_sigma {
                line.push_str(&format!("  burst_sigma={s}"));
            }
            if let Some(s) = t.sigma {
                line.push_str(&format!("  sigma={s}"));
            }
            line.push('\n');
            out.push_str(&line);
        }
        if self.heavy_tail.is_some() || self.retry_storm.is_some() {
            out.push_str("overlays:\n");
        }
        if let Some(ht) = &self.heavy_tail {
            out.push_str(&format!(
                "  heavy-tail: probability={}  median_boost={}  sigma={}\n",
                ht.probability, ht.median_boost, ht.sigma
            ));
        }
        if let Some(rs) = &self.retry_storm {
            out.push_str(&format!(
                "  retry-storm: probability={}  max_retries={}  backoff={}\n",
                rs.probability, rs.max_retries, rs.backoff
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant(kind: WorkloadKind, weight: f64) -> Tenant {
        Tenant {
            label: "t".into(),
            kind,
            weight,
            tweak: ArrivalTweak::default(),
            sigma: None,
        }
    }

    fn base() -> Scenario {
        Scenario {
            name: "test".into(),
            version: 1,
            industry: "test".into(),
            summary: "test scenario".into(),
            days: 1.0,
            tenants: vec![tenant(WorkloadKind::CcA, 1.0)],
            heavy_tail: None,
            retry_storm: None,
        }
    }

    #[test]
    fn valid_scenario_passes() {
        base().validate().expect("base scenario is valid");
    }

    #[test]
    fn empty_tenants_rejected() {
        let mut s = base();
        s.tenants.clear();
        assert!(matches!(s.validate(), Err(ScenarioError::Invalid { .. })));
    }

    #[test]
    fn bad_weight_and_days_rejected() {
        for w in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let mut s = base();
            s.tenants[0].weight = w;
            assert!(s.validate().is_err(), "weight {w} accepted");
        }
        for d in [0.0, -2.0, f64::NAN] {
            let mut s = base();
            s.days = d;
            assert!(s.validate().is_err(), "days {d} accepted");
        }
    }

    #[test]
    fn custom_kind_has_no_profile() {
        let mut s = base();
        s.tenants[0].kind = WorkloadKind::Custom("x".into());
        assert!(s.validate().is_err());
    }

    #[test]
    fn overlay_ranges_enforced() {
        let mut s = base();
        s.heavy_tail = Some(HeavyTail {
            probability: 1.5,
            median_boost: 4.0,
            sigma: 1.0,
        });
        assert!(s.validate().is_err());
        let mut s = base();
        s.retry_storm = Some(RetryStorm {
            probability: 1.0,
            max_retries: 2,
            backoff: Dur::from_secs(60),
        });
        assert!(s.validate().is_err(), "probability 1.0 would retry forever");
        let mut s = base();
        s.retry_storm = Some(RetryStorm {
            probability: 0.1,
            max_retries: 0,
            backoff: Dur::from_secs(60),
        });
        assert!(s.validate().is_err());
    }

    #[test]
    fn describe_is_stable_and_complete() {
        let mut s = base();
        s.tenants.push(Tenant {
            label: "analytics".into(),
            kind: WorkloadKind::CcE,
            weight: 3.0,
            tweak: ArrivalTweak {
                burst_sigma: Some(2.0),
                ..Default::default()
            },
            sigma: Some(0.5),
        });
        s.heavy_tail = Some(HeavyTail {
            probability: 0.05,
            median_boost: 8.0,
            sigma: 1.5,
        });
        let d = s.describe();
        assert_eq!(d, s.describe(), "describe must be deterministic");
        assert!(d.contains("scenario: test (v1)"));
        assert!(d.contains("share=0.25"));
        assert!(d.contains("burst_sigma=2"));
        assert!(d.contains("heavy-tail: probability=0.05"));
        assert!(d.ends_with('\n'));
    }
}
