//! The cross-scenario study: fan a scenario set through the
//! `swim-report` comparison battery and a `Simulator::sweep` what-if
//! grid, and assemble one golden-pinnable report.
//!
//! The study is fully deterministic: scenario streams are seeded, the
//! battery is deterministic in its input traces, and the sweep grid is
//! fixed — so the rendered markdown can be byte-diffed in CI.

use swim_report::{Comparison, Report, Section, Table, TraceContext};
use swim_sim::{ScenarioGrid, SchedulerKind, Simulator};
use swim_synth::ReplayPlan;
use swim_trace::Trace;

use crate::model::{Scenario, ScenarioError};
use crate::stream::{ScenarioStats, ScenarioStream};

/// Knobs for [`compare`].
#[derive(Debug, Clone)]
pub struct StudyOptions {
    /// Seed for every scenario stream (each scenario derives its own
    /// tenant/overlay streams from it).
    pub seed: u64,
    /// Job budget per scenario.
    pub jobs_per_scenario: u64,
    /// Cluster sizes for the what-if sweep.
    pub nodes: Vec<u32>,
    /// Worker threads for the battery (`None` = all cores). The study's
    /// *output* is thread-count-independent; this only affects latency.
    pub threads: Option<usize>,
}

impl Default for StudyOptions {
    fn default() -> Self {
        StudyOptions {
            seed: 42,
            jobs_per_scenario: 2_000,
            nodes: vec![50, 200],
            threads: None,
        }
    }
}

/// Generate every scenario and assemble the cross-scenario study:
/// declared-statistics table, the full comparison battery, and a
/// scheduler × cluster-size sweep per scenario.
pub fn compare(scenarios: &[Scenario], options: &StudyOptions) -> Result<Report, ScenarioError> {
    let _span = swim_obs::span("scenario.study");
    let mut generated: Vec<(Scenario, Trace, ScenarioStats)> = Vec::new();
    for scenario in scenarios {
        let stream = ScenarioStream::new(scenario, options.seed, options.jobs_per_scenario)?;
        let (trace, stats) = stream.collect_trace()?;
        generated.push((scenario.clone(), trace, stats));
    }

    let contexts: Vec<TraceContext> = generated
        .iter()
        .map(|(s, trace, _)| TraceContext::from_trace(s.name.clone(), trace.clone()))
        .collect();
    let comparison = Comparison::new(contexts);
    let mut report = match options.threads {
        Some(n) => comparison.run_with_threads(n),
        None => comparison.run(),
    };
    report.title = format!("Cross-scenario study ({} scenarios)", generated.len());

    report.push(declared_section(&generated));
    report.push(sweep_section(&generated, options));
    Ok(report)
}

/// The scenarios' declared statistics — what each stream reported about
/// itself. The acceptance tests pin catalog `summary()` to these.
fn declared_section(generated: &[(Scenario, Trace, ScenarioStats)]) -> Section {
    let mut table = Table::new(vec![
        "scenario",
        "version",
        "industry",
        "jobs",
        "retries",
        "boosted",
        "bytes moved",
        "span",
    ]);
    for (scenario, _, stats) in generated {
        table.row(vec![
            scenario.name.clone(),
            format!("v{}", scenario.version),
            scenario.industry.clone(),
            stats.generation.jobs.to_string(),
            stats.retries.to_string(),
            stats.boosted.to_string(),
            stats.generation.bytes_moved.to_string(),
            stats.generation.span().to_string(),
        ]);
    }
    let mut section = Section::new("Scenario declarations");
    section.prose(
        "Per-scenario statistics declared by the generator itself while \
         streaming. A catalog built from the same scenario and seed must \
         report an identical summary — the acceptance tests assert it.",
    );
    section.table(table);
    section
}

/// What-if sweep: replay each scenario's trace over a scheduler ×
/// cluster-size grid and tabulate makespan, queueing, and utilization.
fn sweep_section(
    generated: &[(Scenario, Trace, ScenarioStats)],
    options: &StudyOptions,
) -> Section {
    let grid = ScenarioGrid::new(options.nodes.clone())
        .schedulers(vec![SchedulerKind::Fifo, SchedulerKind::Fair]);
    let mut table = Table::new(vec![
        "scenario",
        "nodes",
        "scheduler",
        "makespan",
        "mean queue delay (s)",
        "peak util (slots)",
    ]);
    for (scenario, trace, _) in generated {
        let plan = ReplayPlan::from_trace(trace);
        for cell in Simulator::sweep(&grid, &plan, None) {
            let peak = cell
                .result
                .hourly_utilization
                .iter()
                .cloned()
                .fold(0.0f64, f64::max);
            table.row(vec![
                scenario.name.clone(),
                cell.config.cluster.nodes.to_string(),
                match cell.config.scheduler {
                    SchedulerKind::Fifo => "fifo".to_owned(),
                    SchedulerKind::Fair => "fair".to_owned(),
                },
                cell.result.makespan.to_string(),
                format!("{:.1}", cell.result.mean_queue_delay()),
                format!("{peak:.1}"),
            ]);
        }
    }
    let mut section = Section::new("What-if sweep");
    section.prose(format!(
        "Each scenario replayed over a FIFO/fair × {:?}-node grid \
         (wave-scheduled simulator, no cache tier).",
        options.nodes
    ));
    section.table(table);
    section
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn small_options() -> StudyOptions {
        StudyOptions {
            seed: 7,
            jobs_per_scenario: 300,
            nodes: vec![50],
            threads: Some(2),
        }
    }

    #[test]
    fn study_covers_every_scenario_and_is_deterministic() {
        let scenarios = vec![presets::steady_retail(), presets::retrystorm_fintech()];
        let options = small_options();
        let report = compare(&scenarios, &options).expect("study runs");
        let text = swim_report::markdown::render_report(&report);
        for s in &scenarios {
            assert!(text.contains(&s.name), "report must mention {}", s.name);
        }
        assert!(text.contains("Scenario declarations"));
        assert!(text.contains("What-if sweep"));
        let again = compare(&scenarios, &options).expect("study runs twice");
        assert_eq!(
            text,
            swim_report::markdown::render_report(&again),
            "study must be deterministic"
        );
    }

    #[test]
    fn invalid_scenario_fails_the_study() {
        let mut bad = presets::steady_retail();
        bad.days = -1.0;
        assert!(compare(&[bad], &small_options()).is_err());
    }
}
