//! Acceptance pins for the windowed telemetry types.
//!
//! 1. The windowed quantile rule must agree with
//!    `swim_core::stats::Ecdf::quantile` **bit-for-bit over the
//!    retained window** — the same contract `tests/histogram_ecdf.rs`
//!    pins for lifetime histograms, extended to rotation: whatever
//!    samples the window retains, the quantile the window reports is
//!    exactly the Ecdf answer for those samples.
//! 2. Memory is **O(buckets), not O(requests)**: however many values a
//!    resident process records, the retained sample count never
//!    exceeds `buckets * sample_cap`.

use proptest::prelude::*;
use swim_core::stats::Ecdf;
use swim_obs::clock::ManualClock;
use swim_obs::{WindowedCounter, WindowedHistogram};

fn ecdf_quantile(samples: &[u64], p: f64) -> f64 {
    Ecdf::new(samples.iter().map(|&v| v as f64).collect()).quantile(p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Record a random value stream at random (monotone) times over a
    /// rotating window, then check every quantile the snapshot can be
    /// asked for against Ecdf on the snapshot's own retained samples.
    #[test]
    fn windowed_quantiles_match_ecdf_on_the_retained_window(
        events in prop::collection::vec((0u64..500, 0u64..1_000_000_000_000), 1..150),
        width_ms in 1u64..5_000,
        buckets in 1usize..12,
        p in -0.25f64..1.25,
    ) {
        let clock = ManualClock::new();
        let h = WindowedHistogram::new(width_ms, buckets);
        for &(advance, value) in &events {
            clock.advance_ms(advance);
            h.record_at(clock.now_ms(), value);
        }
        let summary = h.summary_at(clock.now_ms());
        prop_assert!(summary.count >= 1, "the last event is always in-window");
        let ours = summary.quantile(p).expect("retained window is non-empty");
        let theirs = ecdf_quantile(&summary.retained, p);
        prop_assert_eq!((ours as f64).to_bits(), theirs.to_bits());
        // The retained set is a subset of what was recorded, sorted.
        prop_assert!(summary.retained.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(summary.retained.len() as u64 <= summary.count);
    }

    /// With no thinning (cap above the record count) and no rotation
    /// (everything inside one window), the window retains *every*
    /// sample, so windowed quantiles equal Ecdf on the full stream.
    #[test]
    fn without_rotation_or_thinning_the_window_is_exact(
        values in prop::collection::vec(0u64..1_000_000_000, 1..200),
        p in 0.0f64..=1.0,
    ) {
        let h = WindowedHistogram::with_sample_cap(60_000, 4, 4096);
        for &v in &values {
            h.record_at(1_000, v);
        }
        let summary = h.summary_at(1_500);
        prop_assert_eq!(summary.count as usize, values.len());
        prop_assert_eq!(summary.retained.len(), values.len());
        let ours = summary.quantile(p).expect("non-empty");
        let theirs = ecdf_quantile(&summary.retained, p);
        prop_assert_eq!((ours as f64).to_bits(), theirs.to_bits());
    }

    /// O(buckets) memory: retained samples never exceed
    /// `buckets * sample_cap` no matter how many values are recorded,
    /// while count/sum stay exact.
    #[test]
    fn retention_is_bounded_by_buckets_not_requests(
        records in 1usize..5_000,
        cap in 1usize..32,
        buckets in 1usize..6,
    ) {
        let clock = ManualClock::new();
        let h = WindowedHistogram::with_sample_cap(100, buckets, cap);
        for i in 0..records {
            // Spread over time so several buckets fill and rotate.
            if i % 7 == 0 {
                clock.advance_ms(37);
            }
            h.record_at(clock.now_ms(), i as u64);
        }
        prop_assert!(
            h.retained_len() <= buckets * cap,
            "retained {} > buckets {} * cap {}",
            h.retained_len(),
            buckets,
            cap
        );
        let summary = h.summary_at(clock.now_ms());
        prop_assert!(summary.retained.len() <= buckets * cap);
        prop_assert!(summary.count as usize <= records);
    }
}

/// A server-shaped scenario: a minute-long window under a million
/// records holds its memory bound while lifetime `Histogram` would have
/// retained every sample. This is the resident-process footgun test.
#[test]
fn server_scale_recording_stays_o_buckets() {
    let clock = ManualClock::new();
    let h = WindowedHistogram::with_sample_cap(5_000, 12, 64); // 60 s window
    let total = 1_000_000u64;
    for i in 0..total {
        if i % 10_000 == 0 {
            clock.advance_ms(700);
        }
        h.record_at(clock.now_ms(), i % 977);
    }
    assert!(
        h.retained_len() <= 12 * 64,
        "retained {} samples for {total} records",
        h.retained_len()
    );
    let summary = h.summary_at(clock.now_ms());
    assert!(summary.count > 0);
    assert!(summary.quantile(0.99).is_some());
    // The counter companion is O(buckets) by construction; totals stay
    // exact for the in-window portion.
    let c = WindowedCounter::new(5_000, 12);
    for _ in 0..1000 {
        c.add_at(clock.now_ms(), 1);
    }
    assert_eq!(c.summary_at(clock.now_ms()).count, 1000);
}
