//! Satellite: swim-obs histogram quantiles must agree with
//! `swim_core::stats::Ecdf::quantile` **bit-for-bit**, since `--profile`
//! latency percentiles and the paper-facing CDFs must never disagree.
//!
//! `quantile_of_sorted` works on `u64` samples; `Ecdf` works on `f64`.
//! For the sample magnitudes obs records (nanosecond durations, byte
//! counts — all well below 2^53 in tests, and order-preserving even
//! above), `u64 as f64` is monotone over the sampled range, so feeding
//! both sides the same values makes "same selected rank" equivalent to
//! "bit-identical result". The proptest below also draws values near
//! `u64::MAX` to exercise the conversion at the top of the range.

use proptest::prelude::*;
use swim_core::stats::Ecdf;
use swim_obs::quantile_of_sorted;

/// The Ecdf-side answer for the same integer samples.
fn ecdf_quantile(samples: &[u64], p: f64) -> f64 {
    Ecdf::new(samples.iter().map(|&v| v as f64).collect()).quantile(p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For any non-empty sample and any p (including outside [0,1]),
    /// the histogram rule selects a value whose f64 image is exactly
    /// Ecdf::quantile of the f64 image of the samples.
    #[test]
    fn histogram_quantile_matches_ecdf_bit_for_bit(
        mut samples in prop::collection::vec(0u64..1_000_000_000_000, 1..200),
        p in -0.25f64..1.25,
    ) {
        samples.sort_unstable();
        let ours = quantile_of_sorted(&samples, p).expect("non-empty");
        let theirs = ecdf_quantile(&samples, p);
        prop_assert_eq!((ours as f64).to_bits(), theirs.to_bits());
    }

    /// Same agreement at the top of the u64 range, where f64 rounds:
    /// rank selection happens on identically-ordered data, so the
    /// selected element's f64 image still matches exactly.
    #[test]
    fn agreement_holds_near_u64_max(
        mut samples in prop::collection::vec(u64::MAX - 1_000_000..u64::MAX, 1..50),
        p in 0.0f64..=1.0,
    ) {
        samples.sort_unstable();
        let ours = quantile_of_sorted(&samples, p).expect("non-empty");
        let theirs = ecdf_quantile(&samples, p);
        prop_assert_eq!((ours as f64).to_bits(), theirs.to_bits());
    }

    /// p = 0 and p = 1 select min and max on both sides.
    #[test]
    fn endpoints_select_min_and_max(
        mut samples in prop::collection::vec(0u64..u64::MAX, 1..100),
    ) {
        samples.sort_unstable();
        prop_assert_eq!(quantile_of_sorted(&samples, 0.0), Some(samples[0]));
        prop_assert_eq!(quantile_of_sorted(&samples, 1.0), Some(*samples.last().unwrap()));
        prop_assert_eq!(ecdf_quantile(&samples, 0.0).to_bits(), (samples[0] as f64).to_bits());
        prop_assert_eq!(
            ecdf_quantile(&samples, 1.0).to_bits(),
            (*samples.last().unwrap() as f64).to_bits()
        );
    }
}

/// Edge cases the issue pins explicitly: len 0 / 1 / 2 at p = 0 / 1
/// (and the median for len 2, where nearest-rank picks the *lower*).
#[test]
fn edge_cases_len_0_1_2() {
    // len 0: obs returns None; Ecdf::quantile panics by contract.
    assert_eq!(quantile_of_sorted(&[], 0.0), None);
    assert_eq!(quantile_of_sorted(&[], 1.0), None);
    assert!(std::panic::catch_unwind(|| Ecdf::new(vec![]).quantile(0.5)).is_err());

    // len 1: every p selects the only sample.
    for p in [0.0, 0.25, 0.5, 1.0] {
        assert_eq!(quantile_of_sorted(&[42], p), Some(42));
        assert_eq!(ecdf_quantile(&[42], p), 42.0);
    }

    // len 2: p=0 → min, p=0.5 → lower (nearest-rank), p=1 → max.
    for (p, want) in [(0.0, 10u64), (0.5, 10), (0.75, 99), (1.0, 99)] {
        assert_eq!(quantile_of_sorted(&[10, 99], p), Some(want));
        assert_eq!(ecdf_quantile(&[10, 99], p), want as f64);
    }
}
