//! Time-windowed metrics with bounded memory: [`WindowedCounter`] and
//! [`WindowedHistogram`].
//!
//! The lifetime instruments in [`crate::metrics`] are exact but
//! unbounded: a [`crate::Histogram`] retains every sample forever,
//! which is fine for a bench run and fatal for a resident server. The
//! windowed types here answer "what happened over the last minute"
//! with memory that is **O(buckets)**, independent of request count:
//!
//! * Time is divided into fixed-width buckets (`width_ms` each) and a
//!   ring of `buckets` of them covers the window. Recording into a
//!   bucket whose epoch has passed resets it in place — rotation is a
//!   comparison, not a timer thread.
//! * A histogram bucket keeps exact `count`/`sum`/`min`/`max` plus a
//!   bounded sample set for quantiles. When a bucket's samples hit the
//!   cap, every other retained sample is dropped and the keep stride
//!   doubles — a deterministic uniform thinning (no RNG), so under
//!   overload quantiles degrade gracefully instead of memory growing.
//! * Quantiles over the retained window use the exact
//!   [`quantile_of_sorted`] nearest-rank rule — bit-for-bit
//!   `swim_core::stats::Ecdf::quantile` on the same retained samples
//!   (property-tested in `tests/windowed_ecdf.rs`).
//!
//! Unlike the mask-gated lifetime instruments, windowed metrics are
//! always on: they exist so a resident server can answer `stats` /
//! `metrics` without having been restarted with `SWIM_OBS` set, and
//! their cost (one short mutex + bounded push per record) is paid only
//! by callers that construct them.
//!
//! **Clock injection.** The core methods take an explicit `now_ms`
//! (`record_at`, `summary_at`, …), so rotation is driven by whatever
//! clock the caller holds — the process clock ([`crate::clock::now_ms`]
//! via the argument-free conveniences) in production, a
//! [`crate::clock::ManualClock`] or plain integers in tests.

use std::sync::Mutex;

use crate::clock;
use crate::metrics::quantile_of_sorted;

/// Default per-bucket retained-sample cap for [`WindowedHistogram`].
pub const DEFAULT_SAMPLE_CAP: usize = 1024;

/// One live histogram bucket.
#[derive(Debug, Clone)]
struct Bucket {
    /// `start_ms / width_ms` at the time the bucket was (re)started;
    /// identifies which window slice the contents belong to.
    epoch: u64,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// Retained samples (arrival order). Capacity is fixed at the cap;
    /// thinning happens in place, so this never reallocates.
    samples: Vec<u64>,
    /// Keep every `stride`-th observed sample (doubles on overflow).
    stride: u64,
    /// Samples observed in this bucket since the last reset.
    seen: u64,
}

impl Bucket {
    fn fresh(epoch: u64, cap: usize) -> Bucket {
        Bucket {
            epoch,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            samples: Vec::with_capacity(cap),
            stride: 1,
            seen: 0,
        }
    }

    fn reset(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.samples.clear();
        self.stride = 1;
        self.seen = 0;
    }

    fn record(&mut self, v: u64, cap: usize) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if self.seen.is_multiple_of(self.stride) {
            // Thin deterministically until there is room: keep every
            // other retained sample, double the stride. Memory never
            // exceeds cap (a cap of 1 degenerates to keep-latest).
            while self.samples.len() >= cap {
                if self.samples.len() == 1 {
                    self.samples.clear();
                } else {
                    let mut keep = 0usize;
                    self.samples.retain(|_| {
                        keep += 1;
                        keep % 2 == 1
                    });
                }
                self.stride = self.stride.saturating_mul(2);
            }
            self.samples.push(v);
        }
        self.seen += 1;
    }
}

/// Aggregate view of one bucket, for time-series rendering (the
/// `swim-bench serve` sparkline, `swim-top` history).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketSummary {
    /// Wall-clock start of the bucket, process-clock milliseconds.
    pub start_ms: u64,
    /// Exact number of recorded values.
    pub count: u64,
    /// Exact saturating sum of recorded values.
    pub sum: u64,
    /// Nearest-rank median of the bucket's retained samples.
    pub p50: Option<u64>,
    /// Nearest-rank 95th percentile of the bucket's retained samples.
    pub p95: Option<u64>,
}

/// Everything the window currently knows, frozen into plain data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSummary {
    /// Nominal window span: `width_ms * buckets`.
    pub window_ms: u64,
    /// Portion of the window actually covered by live data: from the
    /// start of the oldest live bucket to `now` (0 when empty). Rates
    /// divide by this, so a server that just started does not
    /// under-report.
    pub covered_ms: u64,
    /// Exact number of values recorded in the window.
    pub count: u64,
    /// Exact saturating sum of values recorded in the window.
    pub sum: u64,
    /// Exact minimum recorded in the window.
    pub min: Option<u64>,
    /// Exact maximum recorded in the window.
    pub max: Option<u64>,
    /// Retained samples across the window's live buckets, sorted
    /// ascending. Bounded by `buckets * sample_cap`.
    pub retained: Vec<u64>,
}

impl WindowSummary {
    /// Nearest-rank quantile over the retained window — the exact
    /// `Ecdf::quantile` rule on the same data. `None` when empty.
    pub fn quantile(&self, p: f64) -> Option<u64> {
        quantile_of_sorted(&self.retained, p)
    }

    /// Events per second over the covered portion of the window.
    pub fn rate_per_sec(&self) -> f64 {
        if self.covered_ms == 0 {
            0.0
        } else {
            self.count as f64 * 1000.0 / self.covered_ms as f64
        }
    }
}

/// A latency/size distribution over the trailing window, with bounded
/// memory. See the module docs for the design.
#[derive(Debug)]
pub struct WindowedHistogram {
    width_ms: u64,
    buckets: usize,
    sample_cap: usize,
    ring: Mutex<Vec<Bucket>>,
}

impl WindowedHistogram {
    /// A histogram covering `width_ms * buckets` trailing milliseconds
    /// with the [`DEFAULT_SAMPLE_CAP`]. Zero arguments are clamped
    /// to 1.
    pub fn new(width_ms: u64, buckets: usize) -> WindowedHistogram {
        WindowedHistogram::with_sample_cap(width_ms, buckets, DEFAULT_SAMPLE_CAP)
    }

    /// [`WindowedHistogram::new`] with an explicit per-bucket retained
    /// sample cap (tests use tiny caps to exercise thinning cheaply).
    pub fn with_sample_cap(width_ms: u64, buckets: usize, sample_cap: usize) -> WindowedHistogram {
        WindowedHistogram {
            width_ms: width_ms.max(1),
            buckets: buckets.max(1),
            sample_cap: sample_cap.max(1),
            ring: Mutex::new(Vec::new()),
        }
    }

    /// Nominal window span in milliseconds.
    pub fn window_ms(&self) -> u64 {
        self.width_ms * self.buckets as u64
    }

    /// Record `v` at the process clock's current time.
    pub fn record(&self, v: u64) {
        self.record_at(clock::now_ms(), v);
    }

    /// Record `v` at an injected timestamp. Timestamps may arrive
    /// slightly out of order (concurrent recorders); a value older than
    /// the whole window lands in (and restarts) the bucket its slot
    /// maps to, which is the closest bounded-memory approximation.
    pub fn record_at(&self, now_ms: u64, v: u64) {
        let epoch = now_ms / self.width_ms;
        let idx = (epoch % self.buckets as u64) as usize;
        let mut ring = lock(&self.ring);
        if ring.is_empty() {
            let cap = self.sample_cap;
            ring.resize_with(self.buckets, || Bucket::fresh(u64::MAX, cap));
        }
        let Some(bucket) = ring.get_mut(idx) else {
            return;
        };
        if bucket.epoch != epoch {
            bucket.reset(epoch);
        }
        bucket.record(v, self.sample_cap);
    }

    /// Freeze the window as seen from the process clock's current time.
    pub fn summary(&self) -> WindowSummary {
        self.summary_at(clock::now_ms())
    }

    /// Freeze the window as seen from an injected timestamp: only
    /// buckets whose epoch falls inside `[now - window, now]`
    /// contribute.
    pub fn summary_at(&self, now_ms: u64) -> WindowSummary {
        let now_epoch = now_ms / self.width_ms;
        let oldest_epoch = now_epoch.saturating_sub(self.buckets as u64 - 1);
        let mut out = WindowSummary {
            window_ms: self.window_ms(),
            covered_ms: 0,
            count: 0,
            sum: 0,
            min: None,
            max: None,
            retained: Vec::new(),
        };
        let ring = lock(&self.ring);
        let mut oldest_live: Option<u64> = None;
        for bucket in ring.iter() {
            if bucket.epoch < oldest_epoch || bucket.epoch > now_epoch || bucket.count == 0 {
                continue;
            }
            oldest_live = Some(oldest_live.map_or(bucket.epoch, |e: u64| e.min(bucket.epoch)));
            out.count += bucket.count;
            out.sum = out.sum.saturating_add(bucket.sum);
            out.min = Some(out.min.map_or(bucket.min, |m: u64| m.min(bucket.min)));
            out.max = Some(out.max.map_or(bucket.max, |m: u64| m.max(bucket.max)));
            out.retained.extend_from_slice(&bucket.samples);
        }
        drop(ring);
        if let Some(epoch) = oldest_live {
            let start = epoch * self.width_ms;
            out.covered_ms = now_ms.saturating_sub(start).clamp(1, out.window_ms);
        }
        out.retained.sort_unstable();
        out
    }

    /// Per-bucket aggregates, oldest live bucket first — the window as
    /// a time series. Empty and expired buckets are skipped.
    pub fn buckets_at(&self, now_ms: u64) -> Vec<BucketSummary> {
        let now_epoch = now_ms / self.width_ms;
        let oldest_epoch = now_epoch.saturating_sub(self.buckets as u64 - 1);
        let ring = lock(&self.ring);
        let mut live: Vec<&Bucket> = ring
            .iter()
            .filter(|b| b.epoch >= oldest_epoch && b.epoch <= now_epoch && b.count > 0)
            .collect();
        live.sort_by_key(|b| b.epoch);
        live.into_iter()
            .map(|b| {
                let mut sorted = b.samples.clone();
                sorted.sort_unstable();
                BucketSummary {
                    start_ms: b.epoch * self.width_ms,
                    count: b.count,
                    sum: b.sum,
                    p50: quantile_of_sorted(&sorted, 0.50),
                    p95: quantile_of_sorted(&sorted, 0.95),
                }
            })
            .collect()
    }

    /// Total retained samples across all buckets right now — the
    /// memory-bound observable: always `<= buckets * sample_cap`
    /// however many values were recorded (asserted in the obs test
    /// battery).
    pub fn retained_len(&self) -> usize {
        lock(&self.ring).iter().map(|b| b.samples.len()).sum()
    }
}

/// An event-rate counter over the trailing window: the windowed
/// companion to [`crate::Counter`]. Same ring/rotation scheme as
/// [`WindowedHistogram`], O(buckets) memory, exact counts.
#[derive(Debug)]
pub struct WindowedCounter {
    width_ms: u64,
    buckets: usize,
    ring: Mutex<Vec<(u64, u64)>>,
}

impl WindowedCounter {
    /// A counter covering `width_ms * buckets` trailing milliseconds.
    /// Zero arguments are clamped to 1.
    pub fn new(width_ms: u64, buckets: usize) -> WindowedCounter {
        WindowedCounter {
            width_ms: width_ms.max(1),
            buckets: buckets.max(1),
            ring: Mutex::new(Vec::new()),
        }
    }

    /// Nominal window span in milliseconds.
    pub fn window_ms(&self) -> u64 {
        self.width_ms * self.buckets as u64
    }

    /// Add `n` at the process clock's current time.
    pub fn add(&self, n: u64) {
        self.add_at(clock::now_ms(), n);
    }

    /// Add `n` at an injected timestamp.
    pub fn add_at(&self, now_ms: u64, n: u64) {
        let epoch = now_ms / self.width_ms;
        let idx = (epoch % self.buckets as u64) as usize;
        let mut ring = lock(&self.ring);
        if ring.is_empty() {
            ring.resize(self.buckets, (u64::MAX, 0));
        }
        let Some(slot) = ring.get_mut(idx) else {
            return;
        };
        if slot.0 != epoch {
            *slot = (epoch, 0);
        }
        slot.1 = slot.1.saturating_add(n);
    }

    /// Window total and rate as seen from the process clock.
    pub fn summary(&self) -> WindowSummary {
        self.summary_at(clock::now_ms())
    }

    /// Window total and rate as seen from an injected timestamp. The
    /// returned [`WindowSummary`] carries `count == sum ==` the window
    /// total and no samples.
    pub fn summary_at(&self, now_ms: u64) -> WindowSummary {
        let now_epoch = now_ms / self.width_ms;
        let oldest_epoch = now_epoch.saturating_sub(self.buckets as u64 - 1);
        let mut total = 0u64;
        let mut oldest_live: Option<u64> = None;
        let ring = lock(&self.ring);
        for &(epoch, n) in ring.iter() {
            if epoch < oldest_epoch || epoch > now_epoch || n == 0 {
                continue;
            }
            oldest_live = Some(oldest_live.map_or(epoch, |e: u64| e.min(epoch)));
            total = total.saturating_add(n);
        }
        drop(ring);
        let window_ms = self.window_ms();
        let covered_ms = oldest_live.map_or(0, |epoch| {
            now_ms
                .saturating_sub(epoch * self.width_ms)
                .clamp(1, window_ms)
        });
        WindowSummary {
            window_ms,
            covered_ms,
            count: total,
            sum: total,
            min: None,
            max: None,
            retained: Vec::new(),
        }
    }
}

/// Recover from a poisoned mutex: buckets hold plain counters and
/// samples, valid regardless of a panicking holder.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn rotation_expires_old_buckets() {
        let clock = ManualClock::new();
        let h = WindowedHistogram::new(1_000, 3); // 3 s window
        h.record_at(clock.now_ms(), 10);
        clock.advance_ms(1_000);
        h.record_at(clock.now_ms(), 20);
        let s = h.summary_at(clock.now_ms());
        assert_eq!(s.count, 2);
        assert_eq!((s.min, s.max), (Some(10), Some(20)));
        assert_eq!(s.retained, vec![10, 20]);
        // 2.5 s later the first bucket has left the window.
        clock.advance_ms(2_500);
        let s = h.summary_at(clock.now_ms());
        assert_eq!(s.count, 1);
        assert_eq!(s.retained, vec![20]);
        // 10 s later everything has expired.
        clock.advance_ms(10_000);
        let s = h.summary_at(clock.now_ms());
        assert_eq!(s.count, 0);
        assert_eq!(s.covered_ms, 0);
        assert_eq!(s.quantile(0.5), None);
    }

    #[test]
    fn bucket_reuse_resets_contents() {
        let clock = ManualClock::new();
        let h = WindowedHistogram::new(100, 2); // ring of 2; slot reused every 200 ms
        h.record_at(clock.now_ms(), 5);
        clock.advance_ms(200); // same slot, new epoch
        h.record_at(clock.now_ms(), 7);
        let s = h.summary_at(clock.now_ms());
        assert_eq!(s.count, 1);
        assert_eq!(s.retained, vec![7]);
    }

    #[test]
    fn thinning_bounds_memory_and_keeps_exact_aggregates() {
        let h = WindowedHistogram::with_sample_cap(1_000_000, 4, 8);
        for v in 0..10_000u64 {
            h.record_at(0, v);
        }
        assert!(h.retained_len() <= 8, "retained {}", h.retained_len());
        let s = h.summary_at(0);
        assert_eq!(s.count, 10_000, "count stays exact under thinning");
        assert_eq!(s.sum, (0..10_000u64).sum::<u64>());
        assert_eq!((s.min, s.max), (Some(0), Some(9_999)));
        assert!(!s.retained.is_empty());
        assert!(s.quantile(0.5).is_some());
    }

    #[test]
    fn covered_ms_tracks_live_span() {
        let clock = ManualClock::new();
        clock.set_ms(10_000);
        let h = WindowedHistogram::new(1_000, 60);
        h.record_at(clock.now_ms(), 1);
        clock.advance_ms(2_500);
        h.record_at(clock.now_ms(), 2);
        let s = h.summary_at(clock.now_ms());
        // Oldest live bucket starts at 10 000 ms; now is 12 500 ms.
        assert_eq!(s.covered_ms, 2_500);
        assert_eq!(s.window_ms, 60_000);
    }

    #[test]
    fn windowed_counter_totals_and_rates() {
        let clock = ManualClock::new();
        let c = WindowedCounter::new(1_000, 10);
        c.add_at(clock.now_ms(), 3);
        clock.advance_ms(1_000);
        c.add_at(clock.now_ms(), 5);
        let s = c.summary_at(clock.now_ms());
        assert_eq!(s.count, 8);
        assert_eq!(s.covered_ms, 1_000);
        assert!((s.rate_per_sec() - 8.0).abs() < 1e-9);
        // Expiry: 20 s later nothing is live.
        clock.advance_ms(20_000);
        assert_eq!(c.summary_at(clock.now_ms()).count, 0);
        assert_eq!(c.summary_at(clock.now_ms()).rate_per_sec(), 0.0);
    }

    #[test]
    fn buckets_at_is_an_ordered_time_series() {
        let clock = ManualClock::new();
        let h = WindowedHistogram::new(500, 8);
        for step in 0..4u64 {
            for v in 0..=step {
                h.record_at(clock.now_ms(), v * 100);
            }
            clock.advance_ms(500);
        }
        let series = h.buckets_at(clock.now_ms());
        assert_eq!(series.len(), 4);
        let counts: Vec<u64> = series.iter().map(|b| b.count).collect();
        assert_eq!(counts, vec![1, 2, 3, 4]);
        assert!(series.windows(2).all(|w| w[0].start_ms < w[1].start_ms));
        assert_eq!(series[3].p50, Some(100));
    }

    #[test]
    fn zero_configs_are_clamped() {
        let h = WindowedHistogram::with_sample_cap(0, 0, 0);
        h.record_at(5, 42);
        let s = h.summary_at(5);
        assert_eq!(s.count, 1);
        assert_eq!(s.window_ms, 1);
        let c = WindowedCounter::new(0, 0);
        c.add_at(5, 2);
        assert_eq!(c.summary_at(5).count, 2);
    }
}
