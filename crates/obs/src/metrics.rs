//! Static instruments: [`Counter`], [`Gauge`], and [`Histogram`].
//!
//! All three are designed to be declared as `static` items (`new` is
//! `const`) and to cost one relaxed atomic load + branch when the
//! [`crate::METRICS`] bit is off. On the first *enabled*
//! touch an instrument registers itself with the global
//! [`Registry`](crate::Registry), so snapshots only ever list
//! instruments that actually fired.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::registry;
use crate::{enabled, METRICS};

/// A monotonically increasing event count (chunks decoded, cache hits,
/// bytes read, ...). Exact: no sampling, no saturation below `u64::MAX`.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Create an unregistered counter. `const`, so counters live in
    /// `static` items next to the code they instrument.
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The name the counter registers and snapshots under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n` to the counter. A no-op (one relaxed load + branch) when
    /// metrics are disabled.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled(METRICS) {
            return;
        }
        self.ensure_registered();
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// [`add`](Counter::add)`(1)`.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Current value (reads even while disabled).
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }

    fn ensure_registered(&'static self) {
        if self
            .registered
            .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            registry::register_counter(self);
        }
    }
}

/// A point-in-time signed level (cache entries, heap size, queue
/// depth). Snapshots report the last value set.
pub struct Gauge {
    name: &'static str,
    value: AtomicI64,
    registered: AtomicBool,
}

impl Gauge {
    /// Create an unregistered gauge (`const`; see [`Counter::new`]).
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            value: AtomicI64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The name the gauge registers and snapshots under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Set the level. A no-op when metrics are disabled.
    #[inline]
    pub fn set(&'static self, v: i64) {
        if !enabled(METRICS) {
            return;
        }
        self.ensure_registered();
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value (reads even while disabled).
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }

    fn ensure_registered(&'static self) {
        if self
            .registered
            .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            registry::register_gauge(self);
        }
    }
}

/// An exact-sample latency/size distribution. Samples are kept raw and
/// sorted only at snapshot time, where quantiles are finalized with the
/// same nearest-rank rule as `swim_core::stats::Ecdf::quantile`
/// ([`quantile_of_sorted`]).
pub struct Histogram {
    name: &'static str,
    samples: Mutex<Vec<u64>>,
    registered: AtomicBool,
}

impl Histogram {
    /// Create an unregistered histogram (`const`; see [`Counter::new`]).
    pub const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            samples: Mutex::new(Vec::new()),
            registered: AtomicBool::new(false),
        }
    }

    /// The name the histogram registers and snapshots under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record one sample. A no-op when metrics are disabled; otherwise
    /// takes a short mutex and pushes the raw value.
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !enabled(METRICS) {
            return;
        }
        self.ensure_registered();
        self.lock().push(v);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// A sorted copy of the raw samples.
    pub fn sorted_samples(&self) -> Vec<u64> {
        let mut samples = self.lock().clone();
        samples.sort_unstable();
        samples
    }

    /// Nearest-rank quantile over the recorded samples (`None` when
    /// empty). Matches `Ecdf::quantile` bit-for-bit for the same data.
    pub fn quantile(&self, p: f64) -> Option<u64> {
        quantile_of_sorted(&self.sorted_samples(), p)
    }

    pub(crate) fn reset(&self) {
        self.lock().clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<u64>> {
        self.samples
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn ensure_registered(&'static self) {
        if self
            .registered
            .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            registry::register_histogram(self);
        }
    }
}

/// Nearest-rank quantile of an ascending-sorted slice, or `None` when
/// the slice is empty.
///
/// This is the exact rule of `swim_core::stats::Ecdf::quantile` (which
/// panics on empty input instead): clamp `p` to `[0, 1]`; `p == 0`
/// selects the minimum; otherwise select rank `ceil(p * n)` (1-based,
/// clamped to `[1, n]`). `u64 -> f64` never reorders values for the
/// magnitudes involved, so agreement is bit-for-bit — property-tested
/// in `tests/histogram_ecdf.rs`.
pub fn quantile_of_sorted(sorted: &[u64], p: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let p = p.clamp(0.0, 1.0);
    if p == 0.0 {
        return sorted.first().copied();
    }
    let rank = (p * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;
    use crate::{set_enabled, ALL};

    static DISABLED_COUNTER: Counter = Counter::new("test.metrics.disabled_counter");
    static LIVE_COUNTER: Counter = Counter::new("test.metrics.live_counter");
    static LIVE_GAUGE: Gauge = Gauge::new("test.metrics.live_gauge");
    static LIVE_HISTOGRAM: Histogram = Histogram::new("test.metrics.live_histogram");

    #[test]
    fn disabled_instruments_record_nothing() {
        let _guard = test_support::serialize();
        set_enabled(0);
        DISABLED_COUNTER.add(41);
        DISABLED_COUNTER.incr();
        assert_eq!(DISABLED_COUNTER.get(), 0);
    }

    #[test]
    fn enabled_instruments_accumulate() {
        let _guard = test_support::serialize();
        set_enabled(ALL);
        LIVE_COUNTER.add(2);
        LIVE_COUNTER.incr();
        LIVE_GAUGE.set(-7);
        LIVE_HISTOGRAM.record(30);
        LIVE_HISTOGRAM.record(10);
        LIVE_HISTOGRAM.record(20);
        set_enabled(0);

        assert_eq!(LIVE_COUNTER.get(), 3);
        assert_eq!(LIVE_GAUGE.get(), -7);
        assert_eq!(LIVE_HISTOGRAM.len(), 3);
        assert_eq!(LIVE_HISTOGRAM.sorted_samples(), vec![10, 20, 30]);
        assert_eq!(LIVE_HISTOGRAM.quantile(0.5), Some(20));

        LIVE_COUNTER.reset();
        LIVE_GAUGE.reset();
        LIVE_HISTOGRAM.reset();
        assert_eq!(LIVE_COUNTER.get(), 0);
        assert!(LIVE_HISTOGRAM.is_empty());
    }

    #[test]
    fn quantile_of_sorted_edge_cases() {
        assert_eq!(quantile_of_sorted(&[], 0.5), None);
        assert_eq!(quantile_of_sorted(&[9], 0.0), Some(9));
        assert_eq!(quantile_of_sorted(&[9], 1.0), Some(9));
        assert_eq!(quantile_of_sorted(&[1, 2], 0.0), Some(1));
        assert_eq!(quantile_of_sorted(&[1, 2], 0.5), Some(1));
        assert_eq!(quantile_of_sorted(&[1, 2], 0.51), Some(2));
        assert_eq!(quantile_of_sorted(&[1, 2], 1.0), Some(2));
        // Out-of-range p clamps rather than panics.
        assert_eq!(quantile_of_sorted(&[1, 2, 3], -0.5), Some(1));
        assert_eq!(quantile_of_sorted(&[1, 2, 3], 1.5), Some(3));
    }
}
