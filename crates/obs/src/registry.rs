//! The process-wide registry and its plain-data [`Snapshot`].
//!
//! Instruments register themselves on first enabled touch (see
//! [`crate::metrics`]); spans aggregate here keyed by their `/`-joined
//! path. [`snapshot`] freezes everything into sorted, owned data that
//! renderers (swim-query `--profile`, `swim-catalog stats --metrics`,
//! the JSONL sink) can consume without holding any lock.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use crate::metrics::{quantile_of_sorted, Counter, Gauge, Histogram};

/// Aggregated statistics for one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct SpanStat {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

/// The global registry: every registered instrument plus the span
/// aggregation map. One per process, behind [`snapshot`] / [`reset`].
#[derive(Default)]
pub struct Registry {
    counters: Vec<&'static Counter>,
    gauges: Vec<&'static Gauge>,
    histograms: Vec<&'static Histogram>,
    spans: BTreeMap<String, SpanStat>,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<T>(f: impl FnOnce(&mut Registry) -> T) -> T {
    let mut guard = REGISTRY
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    f(guard.get_or_insert_with(Registry::default))
}

pub(crate) fn register_counter(counter: &'static Counter) {
    with_registry(|r| r.counters.push(counter));
}

pub(crate) fn register_gauge(gauge: &'static Gauge) {
    with_registry(|r| r.gauges.push(gauge));
}

pub(crate) fn register_histogram(histogram: &'static Histogram) {
    with_registry(|r| r.histograms.push(histogram));
}

pub(crate) fn record_span(path: &str, elapsed: Duration) {
    let ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
    with_registry(|r| {
        let stat = r.spans.entry(path.to_owned()).or_default();
        if stat.count == 0 {
            stat.min_ns = ns;
            stat.max_ns = ns;
        } else {
            stat.min_ns = stat.min_ns.min(ns);
            stat.max_ns = stat.max_ns.max(ns);
        }
        stat.count += 1;
        stat.total_ns += ns;
    });
}

/// Zero every registered counter and gauge, clear histogram samples and
/// span statistics. Instruments stay registered; `--profile` calls this
/// before executing so the snapshot covers exactly one query.
pub fn reset() {
    with_registry(|r| {
        for c in &r.counters {
            c.reset();
        }
        for g in &r.gauges {
            g.reset();
        }
        for h in &r.histograms {
            h.reset();
        }
        r.spans.clear();
    });
}

/// Aggregated statistics for one span path, frozen into a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanSample {
    /// `/`-joined span path, e.g. `"query.execute/store.decode_chunk"`.
    pub path: String,
    /// Number of times the span closed.
    pub count: u64,
    /// Sum of elapsed nanoseconds across closures.
    pub total_ns: u64,
    /// Fastest single closure, in nanoseconds.
    pub min_ns: u64,
    /// Slowest single closure, in nanoseconds.
    pub max_ns: u64,
}

/// Summary of one histogram, finalized with the `Ecdf::quantile`
/// nearest-rank rule. Quantile fields are `None` when no samples were
/// recorded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSample {
    /// Instrument name.
    pub name: String,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Minimum sample.
    pub min: Option<u64>,
    /// Nearest-rank median.
    pub p50: Option<u64>,
    /// Nearest-rank 90th percentile.
    pub p90: Option<u64>,
    /// Nearest-rank 99th percentile.
    pub p99: Option<u64>,
    /// Maximum sample.
    pub max: Option<u64>,
}

/// A frozen, lock-free view of the registry: counters/gauges sorted by
/// name, histograms finalized, spans sorted by path.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` for every registered counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every registered gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Finalized histograms, sorted by name.
    pub histograms: Vec<HistogramSample>,
    /// Span statistics, sorted by path.
    pub spans: Vec<SpanSample>,
}

impl Snapshot {
    /// Value of the named counter, if it registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of the named gauge, if it registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Statistics for the named span path, if it recorded.
    pub fn span(&self, path: &str) -> Option<&SpanSample> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// `true` when nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// What happened between `earlier` and `self`: the rate-computation
    /// primitive behind `swim-top`.
    ///
    /// * **Counters** and **span count/total** are differenced
    ///   (saturating, so a counter reset between snapshots reads as 0
    ///   rather than wrapping); instruments absent from `earlier`
    ///   contribute their full value.
    /// * **Gauges** are levels and **histogram quantiles** are not
    ///   differentiable, so both carry the later snapshot's values
    ///   unchanged.
    ///
    /// Only instruments present in `self` appear in the delta, and
    /// span `min_ns`/`max_ns` keep the later snapshot's lifetime
    /// values.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(name, value)| {
                let before = earlier.counter(name).unwrap_or(0);
                (name.clone(), value.saturating_sub(before))
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .map(|s| {
                let (count_before, total_before) = earlier
                    .span(&s.path)
                    .map_or((0, 0), |e| (e.count, e.total_ns));
                SpanSample {
                    path: s.path.clone(),
                    count: s.count.saturating_sub(count_before),
                    total_ns: s.total_ns.saturating_sub(total_before),
                    min_ns: s.min_ns,
                    max_ns: s.max_ns,
                }
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
            spans,
        }
    }
}

/// Freeze the registry into a [`Snapshot`].
pub fn snapshot() -> Snapshot {
    with_registry(|r| {
        let mut counters: Vec<(String, u64)> = r
            .counters
            .iter()
            .map(|c| (c.name().to_owned(), c.get()))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, i64)> = r
            .gauges
            .iter()
            .map(|g| (g.name().to_owned(), g.get()))
            .collect();
        gauges.sort();
        let mut histograms: Vec<HistogramSample> = r
            .histograms
            .iter()
            .map(|h| {
                let sorted = h.sorted_samples();
                HistogramSample {
                    name: h.name().to_owned(),
                    count: sorted.len() as u64,
                    sum: sorted.iter().sum(),
                    min: sorted.first().copied(),
                    p50: quantile_of_sorted(&sorted, 0.5),
                    p90: quantile_of_sorted(&sorted, 0.9),
                    p99: quantile_of_sorted(&sorted, 0.99),
                    max: sorted.last().copied(),
                }
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        let spans = r
            .spans
            .iter()
            .map(|(path, stat)| SpanSample {
                path: path.clone(),
                count: stat.count,
                total_ns: stat.total_ns,
                min_ns: stat.min_ns,
                max_ns: stat.max_ns,
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
            spans,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;
    use crate::{set_enabled, ALL};

    #[test]
    fn delta_differences_counters_and_spans_only() {
        let earlier = Snapshot {
            counters: vec![("a".into(), 10), ("gone".into(), 99)],
            gauges: vec![("g".into(), 1)],
            histograms: Vec::new(),
            spans: vec![SpanSample {
                path: "p".into(),
                count: 2,
                total_ns: 100,
                min_ns: 40,
                max_ns: 60,
            }],
        };
        let later = Snapshot {
            counters: vec![("a".into(), 25), ("new".into(), 7)],
            gauges: vec![("g".into(), 5)],
            histograms: Vec::new(),
            spans: vec![SpanSample {
                path: "p".into(),
                count: 5,
                total_ns: 450,
                min_ns: 30,
                max_ns: 200,
            }],
        };
        let delta = later.delta(&earlier);
        assert_eq!(delta.counter("a"), Some(15));
        assert_eq!(delta.counter("new"), Some(7), "absent-before = full value");
        assert_eq!(delta.counter("gone"), None, "only later instruments appear");
        assert_eq!(delta.gauge("g"), Some(5), "gauges carry the later level");
        let span = delta.span("p").unwrap();
        assert_eq!((span.count, span.total_ns), (3, 350));
        assert_eq!((span.min_ns, span.max_ns), (30, 200));
        // A counter reset between snapshots saturates to 0, not wrap.
        let reset = earlier.delta(&later);
        assert_eq!(reset.counter("a"), Some(0));
    }

    static SNAP_COUNTER: Counter = Counter::new("test.registry.counter");
    static SNAP_GAUGE: Gauge = Gauge::new("test.registry.gauge");
    static SNAP_HISTOGRAM: Histogram = Histogram::new("test.registry.histogram");

    #[test]
    fn snapshot_freezes_sorted_data_and_reset_zeroes() {
        let _guard = test_support::serialize();
        set_enabled(ALL);
        SNAP_COUNTER.add(5);
        SNAP_GAUGE.set(11);
        for v in [4u64, 1, 3, 2] {
            SNAP_HISTOGRAM.record(v);
        }
        record_span("test.registry.span", Duration::from_nanos(100));
        record_span("test.registry.span", Duration::from_nanos(300));
        set_enabled(0);

        let snap = snapshot();
        assert_eq!(snap.counter("test.registry.counter"), Some(5));
        assert_eq!(snap.gauge("test.registry.gauge"), Some(11));
        let hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "test.registry.histogram")
            .unwrap();
        assert_eq!(hist.count, 4);
        assert_eq!(hist.sum, 10);
        assert_eq!(hist.min, Some(1));
        assert_eq!(hist.p50, Some(2));
        assert_eq!(hist.max, Some(4));
        let span = snap.span("test.registry.span").unwrap();
        assert_eq!(span.count, 2);
        assert_eq!(span.total_ns, 400);
        assert_eq!(span.min_ns, 100);
        assert_eq!(span.max_ns, 300);
        assert!(snap.counters.windows(2).all(|w| w[0].0 <= w[1].0));

        reset();
        let snap = snapshot();
        assert_eq!(snap.counter("test.registry.counter"), Some(0));
        assert_eq!(snap.gauge("test.registry.gauge"), Some(0));
        assert!(snap.span("test.registry.span").is_none());
        let hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "test.registry.histogram")
            .unwrap();
        assert_eq!(hist.count, 0);
        assert_eq!(hist.p50, None);
    }
}
