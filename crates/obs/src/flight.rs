//! The flight recorder: a bounded ring of recent span events.
//!
//! Aggregated span statistics ([`crate::Snapshot::spans`]) answer "how
//! slow is this path on average"; the flight recorder answers "what
//! were the last N things that happened, and how long did each take" —
//! the question an operator asks right after noticing a latency spike.
//! Every span close lands here while spans are enabled, and callers
//! (the server's request loop) can push events explicitly with a
//! request id attached, independent of the enable mask.
//!
//! Memory is strictly bounded: the ring holds at most
//! [`capacity`] events (default [`DEFAULT_CAPACITY`]); older events
//! are dropped. Events carry a global sequence number so a consumer
//! polling [`recent`] can tell how many it missed.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Duration;

use crate::clock;

/// Default ring capacity.
pub const DEFAULT_CAPACITY: usize = 256;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global sequence number, 1-based, monotonic across the process.
    pub seq: u64,
    /// Caller-supplied id (the server's request id); `None` for events
    /// recorded automatically from span closes.
    pub id: Option<u64>,
    /// `/`-joined span path (or caller-supplied label).
    pub path: String,
    /// Process-clock milliseconds at which the event closed.
    pub at_ms: u64,
    /// Elapsed nanoseconds.
    pub dur_ns: u64,
}

struct Ring {
    events: VecDeque<FlightEvent>,
    capacity: usize,
    next_seq: u64,
}

static RING: Mutex<Option<Ring>> = Mutex::new(None);

fn with_ring<T>(f: impl FnOnce(&mut Ring) -> T) -> T {
    let mut guard = RING
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    f(guard.get_or_insert_with(|| Ring {
        events: VecDeque::with_capacity(DEFAULT_CAPACITY),
        capacity: DEFAULT_CAPACITY,
        next_seq: 0,
    }))
}

/// Current ring capacity.
pub fn capacity() -> usize {
    with_ring(|r| r.capacity)
}

/// Resize the ring (clamped to at least 1). Shrinking drops the oldest
/// events immediately.
pub fn set_capacity(capacity: usize) {
    with_ring(|r| {
        r.capacity = capacity.max(1);
        while r.events.len() > r.capacity {
            r.events.pop_front();
        }
    });
}

/// Record an event with an attached id (the server tags request events
/// with their monotonic request id). Returns the event's sequence
/// number. Always records — explicit calls are not mask-gated.
pub fn record_with_id(path: &str, id: u64, elapsed: Duration) -> u64 {
    push(path, Some(id), elapsed)
}

/// Record an anonymous event. Returns the event's sequence number.
pub fn record(path: &str, elapsed: Duration) -> u64 {
    push(path, None, elapsed)
}

fn push(path: &str, id: Option<u64>, elapsed: Duration) -> u64 {
    let at_ms = clock::now_ms();
    let dur_ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    with_ring(|r| {
        r.next_seq += 1;
        while r.events.len() >= r.capacity {
            r.events.pop_front();
        }
        r.events.push_back(FlightEvent {
            seq: r.next_seq,
            id,
            path: path.to_owned(),
            at_ms,
            dur_ns,
        });
        r.next_seq
    })
}

/// The retained events, oldest first.
pub fn recent() -> Vec<FlightEvent> {
    with_ring(|r| r.events.iter().cloned().collect())
}

/// Drop every retained event (sequence numbers keep counting).
pub fn clear() {
    with_ring(|r| r.events.clear());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_ordered() {
        let _guard = crate::test_support::serialize();
        clear();
        set_capacity(4);
        for i in 0..10u64 {
            record_with_id("test.flight", i, Duration::from_nanos(i));
        }
        let events = recent();
        assert_eq!(events.len(), 4, "older events dropped");
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(events[3].id, Some(9));
        assert_eq!(events[0].path, "test.flight");
        // Growing the capacity keeps what we have; clearing drops it.
        set_capacity(DEFAULT_CAPACITY);
        assert_eq!(recent().len(), 4);
        clear();
        assert!(recent().is_empty());
        // Sequence numbers survive a clear.
        let seq = record("test.flight.after", Duration::ZERO);
        assert!(seq > 10);
        clear();
    }

    #[test]
    fn shrinking_capacity_truncates() {
        let _guard = crate::test_support::serialize();
        clear();
        set_capacity(8);
        for _ in 0..8 {
            record("test.flight.shrink", Duration::ZERO);
        }
        set_capacity(2);
        assert_eq!(recent().len(), 2);
        assert_eq!(capacity(), 2);
        set_capacity(0);
        assert_eq!(capacity(), 1, "capacity clamps to 1");
        set_capacity(DEFAULT_CAPACITY);
        clear();
    }
}
