//! Hierarchical timed spans.
//!
//! A span measures one timed region of code. Spans nest per thread: a
//! span opened while another is active records under the joined path
//! (`"catalog.compact/store.decode_chunk"`), which is how decode time
//! shows up attributed to the operation that caused it. Aggregated
//! statistics per path (count / total / min / max) land in the global
//! [`Registry`](crate::Registry).
//!
//! [`timed`] is the workspace's one clock path: it always measures (and
//! returns) the wall-clock duration, and *additionally* records a span
//! when the [`crate::SPANS`] bit is on. Benches use it instead
//! of ad-hoc `Instant::now()` pairs.
//!
//! While spans are enabled, every span close is also pushed into the
//! bounded [`crate::flight`] recorder ring, so the most recent
//! individual events stay inspectable next to the aggregates.

use std::cell::RefCell;
use std::time::{Duration, Instant};

use crate::registry;
use crate::{enabled, SPANS};

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Open a timed span. The returned guard records the elapsed time under
/// the thread's current span path when dropped. When spans are disabled
/// this is a no-op: the guard is inert and nothing is allocated.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled(SPANS) {
        return SpanGuard { active: None };
    }
    SpanGuard {
        active: Some(open(name)),
    }
}

/// Run `f`, returning its result and the measured wall-clock duration.
/// Also records a `name` span when spans are enabled. This is the
/// single timing path shared by instrumentation and benches.
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, Duration) {
    let recording = enabled(SPANS);
    let path = if recording { Some(push(name)) } else { None };
    let start = Instant::now();
    let out = f();
    let elapsed = start.elapsed();
    if let Some(path) = path {
        pop();
        registry::record_span(&path, elapsed);
        crate::flight::record(&path, elapsed);
    }
    (out, elapsed)
}

struct ActiveSpan {
    /// Full `/`-joined path, captured at open time.
    path: String,
    start: Instant,
}

fn push(name: &'static str) -> String {
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name);
        stack.join("/")
    })
}

fn pop() {
    STACK.with(|stack| {
        stack.borrow_mut().pop();
    });
}

fn open(name: &'static str) -> ActiveSpan {
    ActiveSpan {
        path: push(name),
        start: Instant::now(),
    }
}

/// RAII guard returned by [`span`]; records on drop.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let elapsed = active.start.elapsed();
            pop();
            registry::record_span(&active.path, elapsed);
            crate::flight::record(&active.path, elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;
    use crate::{set_enabled, snapshot, ALL};

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = test_support::serialize();
        set_enabled(0);
        {
            let _s = span("test.span.disabled_outer");
            let _t = span("test.span.disabled_inner");
        }
        let snap = snapshot();
        assert!(snap
            .spans
            .iter()
            .all(|s| !s.path.contains("test.span.disabled")));
    }

    #[test]
    fn nested_spans_record_joined_paths() {
        let _guard = test_support::serialize();
        set_enabled(ALL);
        {
            let _outer = span("test.span.outer");
            let _inner = span("test.span.inner");
        }
        let ((), elapsed) = timed("test.span.timed", || std::thread::sleep(Duration::ZERO));
        set_enabled(0);

        let snap = snapshot();
        let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
        assert!(paths.contains(&"test.span.outer"));
        assert!(paths.contains(&"test.span.outer/test.span.inner"));
        assert!(paths.contains(&"test.span.timed"));
        let outer = snap.span("test.span.outer").unwrap();
        assert!(outer.count >= 1);
        assert!(outer.total_ns >= outer.min_ns);
        assert!(elapsed >= Duration::ZERO);
        registry::reset();
    }

    #[test]
    fn timed_measures_even_when_disabled() {
        let _guard = test_support::serialize();
        set_enabled(0);
        let (value, elapsed) = timed("test.span.timed_disabled", || 7);
        assert_eq!(value, 7);
        assert!(elapsed >= Duration::ZERO);
        let snap = snapshot();
        assert!(snap.span("test.span.timed_disabled").is_none());
    }
}
