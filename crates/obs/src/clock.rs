//! The workspace clock: monotonic milliseconds/microseconds since the
//! first read, plus a [`ManualClock`] for deterministic tests.
//!
//! `swim-obs` is the only crate allowed to read `Instant`/`SystemTime`
//! (enforced by `swim-lint`, rule `clock`), so every layer that needs a
//! timestamp — the server's access log, windowed-metric rotation,
//! uptime reporting — goes through this module. The epoch is process
//! local (first call), which is exactly what windowed metrics want:
//! bucket rotation only ever compares durations, never wall-clock
//! dates.
//!
//! Time-*driven* code (window rotation, rate computation) should not
//! call [`now_ms`] directly in its core: the windowed types in
//! [`crate::window`] take explicit `now_ms` arguments (`record_at`,
//! `summary_at`), so tests inject a [`ManualClock`] — or plain
//! integers — and rotation becomes deterministic. The argument-free
//! convenience methods feed the process clock in.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic microseconds since the process's first clock read.
///
/// Saturates at `u64::MAX` (584 thousand years of uptime).
pub fn now_us() -> u64 {
    let elapsed = EPOCH.get_or_init(Instant::now).elapsed();
    u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX)
}

/// Monotonic milliseconds since the process's first clock read.
pub fn now_ms() -> u64 {
    now_us() / 1000
}

/// A hand-cranked clock for deterministic tests: starts at 0 ms and
/// only moves when [`ManualClock::advance_ms`] is called. Pass its
/// [`ManualClock::now_ms`] value to the `_at` methods of the windowed
/// types to drive bucket rotation without sleeping.
#[derive(Debug, Default)]
pub struct ManualClock {
    ms: AtomicU64,
}

impl ManualClock {
    /// A clock at 0 ms.
    pub const fn new() -> ManualClock {
        ManualClock {
            ms: AtomicU64::new(0),
        }
    }

    /// Current reading, in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.ms.load(Ordering::Relaxed)
    }

    /// Move the clock forward by `ms` milliseconds and return the new
    /// reading.
    pub fn advance_ms(&self, ms: u64) -> u64 {
        self.ms.fetch_add(ms, Ordering::Relaxed) + ms
    }

    /// Set the clock to an absolute reading.
    pub fn set_ms(&self, ms: u64) {
        self.ms.store(ms, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_clock_is_monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
        assert!(now_ms() <= now_us());
    }

    #[test]
    fn manual_clock_moves_only_when_cranked() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_ms(), 0);
        assert_eq!(clock.advance_ms(250), 250);
        assert_eq!(clock.now_ms(), 250);
        clock.set_ms(10);
        assert_eq!(clock.now_ms(), 10);
    }
}
