//! Machine-readable JSONL export of a [`Snapshot`].
//!
//! One JSON object per line, one line per instrument, so the bench
//! harness can append successive snapshots to a single file and grep /
//! parse them without a streaming JSON parser. Serialization is
//! hand-rolled (this crate has no dependencies): names are the only
//! strings and get full JSON escaping.
//!
//! Line shapes:
//!
//! ```json
//! {"type":"counter","name":"store.chunks_decoded","value":12}
//! {"type":"gauge","name":"catalog.cache_entries","value":3}
//! {"type":"histogram","name":"...","count":4,"sum":10,"min":1,"p50":2,"p90":4,"p99":4,"max":4}
//! {"type":"span","path":"query.execute","count":1,"total_ns":123,"min_ns":123,"max_ns":123}
//! ```

use std::io::Write as _;

use crate::registry::Snapshot;

/// Environment variable naming the JSONL sink file. When set, CLIs
/// append their final snapshot to it via [`append_env`].
pub const SINK_ENV: &str = "SWIM_OBS_JSONL";

/// Escape a string into a JSON string literal (with quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_owned(), |v| v.to_string())
}

/// Render a snapshot as JSON lines (trailing newline included when
/// non-empty; an empty snapshot renders as the empty string).
pub fn to_jsonl(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        out.push_str(&format!(
            "{{\"type\":\"counter\",\"name\":{},\"value\":{}}}\n",
            json_string(name),
            value
        ));
    }
    for (name, value) in &snapshot.gauges {
        out.push_str(&format!(
            "{{\"type\":\"gauge\",\"name\":{},\"value\":{}}}\n",
            json_string(name),
            value
        ));
    }
    for h in &snapshot.histograms {
        out.push_str(&format!(
            "{{\"type\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}\n",
            json_string(&h.name),
            h.count,
            h.sum,
            opt(h.min),
            opt(h.p50),
            opt(h.p90),
            opt(h.p99),
            opt(h.max),
        ));
    }
    for s in &snapshot.spans {
        out.push_str(&format!(
            "{{\"type\":\"span\",\"path\":{},\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{}}}\n",
            json_string(&s.path),
            s.count,
            s.total_ns,
            s.min_ns,
            s.max_ns,
        ));
    }
    out
}

/// Append `snapshot` to the file named by `path`, creating it if
/// needed. Empty snapshots append nothing.
pub fn append(path: &str, snapshot: &Snapshot) -> std::io::Result<()> {
    let text = to_jsonl(snapshot);
    if text.is_empty() {
        return Ok(());
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(text.as_bytes())
}

/// Append `snapshot` to the file named by [`SINK_ENV`], if that
/// variable is set. Returns `Ok(false)` when it is not set.
pub fn append_env(snapshot: &Snapshot) -> std::io::Result<bool> {
    match std::env::var(SINK_ENV) {
        Ok(path) if !path.is_empty() => {
            append(&path, snapshot)?;
            Ok(true)
        }
        _ => Ok(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{HistogramSample, SpanSample};

    #[test]
    fn jsonl_lines_have_fixed_shapes() {
        let snap = Snapshot {
            counters: vec![("a.count".to_owned(), 2)],
            gauges: vec![("b.level".to_owned(), -3)],
            histograms: vec![HistogramSample {
                name: "c.hist".to_owned(),
                count: 0,
                sum: 0,
                min: None,
                p50: None,
                p90: None,
                p99: None,
                max: None,
            }],
            spans: vec![SpanSample {
                path: "d/e".to_owned(),
                count: 1,
                total_ns: 5,
                min_ns: 5,
                max_ns: 5,
            }],
        };
        let text = to_jsonl(&snap);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                "{\"type\":\"counter\",\"name\":\"a.count\",\"value\":2}",
                "{\"type\":\"gauge\",\"name\":\"b.level\",\"value\":-3}",
                "{\"type\":\"histogram\",\"name\":\"c.hist\",\"count\":0,\"sum\":0,\"min\":null,\"p50\":null,\"p90\":null,\"p99\":null,\"max\":null}",
                "{\"type\":\"span\",\"path\":\"d/e\",\"count\":1,\"total_ns\":5,\"min_ns\":5,\"max_ns\":5}",
            ]
        );
        assert!(text.ends_with('\n'));
        assert_eq!(to_jsonl(&Snapshot::default()), "");
    }

    #[test]
    fn json_strings_escape_specials() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn append_env_is_noop_without_var() {
        // SINK_ENV is not set in the test environment.
        if std::env::var(SINK_ENV).is_err() {
            assert!(!append_env(&Snapshot::default()).unwrap());
        }
    }
}
