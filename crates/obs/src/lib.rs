//! # swim-obs
//!
//! A zero-dependency observability layer for the swim workspace:
//! counters, gauges, nearest-rank latency histograms, and hierarchical
//! timed spans, collected into one process-wide [`Registry`] and
//! exported as plain data ([`Snapshot`]) or JSON lines ([`jsonl`]).
//!
//! The crate sits **below** every other workspace crate (including
//! `swim-store`), so any layer can instrument its hot paths without new
//! dependency edges. Three properties keep that instrumentation honest:
//!
//! 1. **Cheap when disabled.** Every recording call starts with one
//!    relaxed atomic load of the global enable mask; when the relevant
//!    bit is off the call returns immediately — no allocation, no lock,
//!    no clock read. Instrumentation is compiled in unconditionally and
//!    costs a branch.
//! 2. **Static instruments, lazy registration.** Instruments are
//!    `static` values (`Counter::new` is `const`); they register
//!    themselves with the global registry on first *enabled* touch, so
//!    an instrument that never fires never shows up in a snapshot.
//! 3. **Exact, deterministic data.** Counters are exact `u64`s,
//!    histogram quantiles use the same nearest-rank rule as
//!    `swim_core::stats::Ecdf::quantile` (property-tested bit-for-bit),
//!    and snapshots sort by name — so for a deterministic workload the
//!    counter section of a snapshot is byte-stable.
//!
//! Enablement comes from the `SWIM_OBS` environment variable
//! ([`init_from_env`]: comma-separated `metric` / `span` / `all`) or
//! programmatically ([`set_enabled`]) — `swim-query --profile` forces
//! everything on for the duration of the query.
//!
//! For **resident processes** (the `swim-serve` server) three further
//! pieces provide live telemetry at bounded memory:
//!
//! * [`window`] — [`WindowedHistogram`] / [`WindowedCounter`]: "last
//!   minute" distributions and rates over a ring of fixed-duration
//!   buckets, O(buckets) memory however many events are recorded,
//!   rotation driven by injectable timestamps ([`clock`]).
//! * [`flight`] — a bounded ring of the most recent span events, for
//!   "what just happened" forensics next to the aggregates.
//! * [`Snapshot::delta`] — difference two snapshots to turn lifetime
//!   counters into rates (`swim-top`'s polling primitive).
//!
//! ```
//! use swim_obs::{set_enabled, snapshot, Counter, METRICS};
//!
//! static DECODED: Counter = Counter::new("example.chunks_decoded");
//! set_enabled(METRICS);
//! DECODED.add(3);
//! let snap = snapshot();
//! assert_eq!(snap.counter("example.chunks_decoded"), Some(3));
//! set_enabled(0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod flight;
pub mod jsonl;
pub mod metrics;
pub mod registry;
pub mod span;
pub mod window;

pub use flight::FlightEvent;
pub use metrics::{quantile_of_sorted, Counter, Gauge, Histogram};
pub use registry::{reset, snapshot, HistogramSample, Registry, Snapshot, SpanSample};
pub use span::{span, timed, SpanGuard};
pub use window::{BucketSummary, WindowSummary, WindowedCounter, WindowedHistogram};

use std::sync::atomic::{AtomicU32, Ordering};

/// Enable bit for counters, gauges, and histograms.
pub const METRICS: u32 = 1;
/// Enable bit for hierarchical timed spans.
pub const SPANS: u32 = 2;
/// Every component.
pub const ALL: u32 = METRICS | SPANS;

/// The process-wide enable mask. Everything is off by default, so
/// instrumented code paths cost one relaxed load + branch.
static ENABLED: AtomicU32 = AtomicU32::new(0);

/// Replace the enable mask (a bitwise OR of [`METRICS`] and [`SPANS`];
/// `0` disables everything).
pub fn set_enabled(mask: u32) {
    ENABLED.store(mask & ALL, Ordering::Relaxed);
}

/// `true` when *any* bit of `mask` is enabled.
#[inline]
pub fn enabled(mask: u32) -> bool {
    ENABLED.load(Ordering::Relaxed) & mask != 0
}

/// Parse an enable mask from `SWIM_OBS` and apply it, returning the
/// mask. Tokens are comma-separated: `metric`/`metrics`, `span`/`spans`,
/// `all`/`1`. Unknown tokens are ignored, so an unset or empty variable
/// leaves everything off.
pub fn init_from_env() -> u32 {
    let mask = std::env::var("SWIM_OBS")
        .map(|v| parse_mask(&v))
        .unwrap_or(0);
    set_enabled(mask);
    mask
}

/// Parse a `SWIM_OBS`-style component list into an enable mask.
pub fn parse_mask(text: &str) -> u32 {
    let mut mask = 0;
    for token in text.split(',') {
        match token.trim() {
            "metric" | "metrics" => mask |= METRICS,
            "span" | "spans" => mask |= SPANS,
            "all" | "1" | "true" => mask |= ALL,
            _ => {}
        }
    }
    mask
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Tests that flip the global enable mask must not interleave: this
    //! lock serializes them within the crate's test binary.
    use std::sync::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    pub fn serialize() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_parsing_accepts_components_and_ignores_junk() {
        assert_eq!(parse_mask(""), 0);
        assert_eq!(parse_mask("metric"), METRICS);
        assert_eq!(parse_mask("spans"), SPANS);
        assert_eq!(parse_mask("span,metric"), ALL);
        assert_eq!(parse_mask(" span , metrics "), ALL);
        assert_eq!(parse_mask("all"), ALL);
        assert_eq!(parse_mask("1"), ALL);
        assert_eq!(parse_mask("banana"), 0);
        assert_eq!(parse_mask("banana,span"), SPANS);
    }

    #[test]
    fn enable_mask_round_trips() {
        let _guard = test_support::serialize();
        set_enabled(METRICS);
        assert!(enabled(METRICS));
        assert!(!enabled(SPANS));
        assert!(enabled(ALL), "any-bit semantics");
        set_enabled(0);
        assert!(!enabled(ALL));
    }
}
