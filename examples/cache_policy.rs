//! Storage-tier study (§4.2–§4.3 of the paper): measure how the candidate
//! cache policies perform on a generated access stream as cache capacity
//! varies, testing the paper's claim that a *size-threshold* admission
//! policy keeps hit rates high while detaching cache growth from data
//! growth.
//!
//! ```text
//! cargo run --release --example cache_policy
//! ```

use swim::prelude::*;
use swim::sim::CachePolicy;
use swim_sim::Simulator;
use swim_trace::PathId;

fn main() {
    // CC-c has the strongest re-access behaviour (≈78 % of jobs touch
    // pre-existing data) — the most cache-friendly of the seven.
    let trace = WorkloadGenerator::new(
        GeneratorConfig::new(WorkloadKind::CcC)
            .scale(0.5)
            .days(5.0)
            .seed(13),
    )
    .generate();
    let plan = ReplayPlan::from_trace(&trace);
    let paths: Vec<PathId> = trace
        .jobs()
        .iter()
        .map(|j| {
            j.input_paths
                .first()
                .copied()
                .expect("CC-c has input paths")
        })
        .collect();

    // Workload-specific size threshold (§4.2: "a viable cache policy is
    // to cache files whose size is less than a threshold"): the 90th
    // percentile of per-job input size, i.e. the knee where the Fig. 3
    // jobs-CDF flattens out.
    let mut sizes: Vec<u64> = trace.jobs().iter().map(|j| j.input.bytes()).collect();
    sizes.sort_unstable();
    let threshold = DataSize::from_bytes(sizes[sizes.len() * 9 / 10]);

    println!(
        "workload: {} ({} jobs, {} moved); size threshold = p90 job input = {}\n",
        trace.kind,
        trace.len(),
        trace.bytes_moved(),
        threshold
    );
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>10}",
        "policy", "cap 10GB", "cap 100GB", "cap 1TB", "cap 10TB"
    );

    let policies: [(&str, CachePolicy); 4] = [
        ("LRU", CachePolicy::Lru),
        ("LFU", CachePolicy::Lfu),
        (
            "size-threshold p90",
            CachePolicy::SizeThreshold { threshold },
        ),
        ("unlimited (bound)", CachePolicy::Unlimited),
    ];
    for (name, policy) in policies {
        print!("{name:<24}");
        for cap_gb in [10u64, 100, 1_000, 10_000] {
            let config =
                SimConfig::new(trace.machines).with_cache(policy, DataSize::from_gb(cap_gb));
            let result = Simulator::new(config).run(&plan, Some(&paths));
            let stats = result.cache.expect("cache configured");
            print!(" {:>9.1}%", stats.hit_rate() * 100.0);
        }
        println!();
    }

    println!(
        "\nReading (paper §4.2): the threshold policy should approach the \
         unlimited bound at modest capacities because most re-accesses hit \
         small, hot files — while byte-fraction caching of the same data \
         would have to scale with total storage."
    );
}
