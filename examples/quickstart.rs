//! Quickstart: generate one workload, run the full characterization, and
//! print a one-page summary.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use swim::prelude::*;

fn main() {
    // A week of the FB-2009-like workload at 5 % job scale: around
    // 20 000 jobs, generated in about a second.
    let trace = WorkloadGenerator::new(
        GeneratorConfig::new(WorkloadKind::Fb2009)
            .scale(0.05)
            .days(7.0)
            .seed(7),
    )
    .generate();

    let analysis = WorkloadAnalysis::of(&trace);
    let s = &analysis.summary;
    println!("workload       : {}", s.workload);
    println!("jobs           : {}", s.jobs);
    println!("trace length   : {}", s.length);
    println!("bytes moved    : {}", s.bytes_moved);
    println!();

    println!("per-job data sizes (median):");
    println!(
        "  input  {}",
        DataSize::from_f64(analysis.input_sizes.median())
    );
    println!(
        "  shuffle{:>7}",
        DataSize::from_f64(analysis.shuffle_sizes.median()).to_string()
    );
    println!(
        "  output {}",
        DataSize::from_f64(analysis.output_sizes.median())
    );
    println!();

    if let Some(b) = &analysis.burstiness {
        println!(
            "burstiness     : peak-to-median {:.1}:1 (paper band: 9:1 … 260:1)",
            b.peak_to_median
        );
    }
    let c = analysis.correlations;
    println!(
        "correlations   : jobs-bytes {:.2}, jobs-task {:.2}, bytes-task {:.2}",
        c.jobs_bytes, c.jobs_task_seconds, c.bytes_task_seconds
    );
    println!();

    println!(
        "job types (k = {} by elbow; dominant cluster {:.1}% of jobs):",
        analysis.job_types.config.k,
        analysis.dominant_job_type_share() * 100.0
    );
    for cluster in &analysis.job_types.clusters {
        println!(
            "  {:>6} jobs  in {:>9}  out {:>9}  dur {:>12}  [{}]",
            cluster.count,
            cluster.input.to_string(),
            cluster.output.to_string(),
            cluster.duration.to_string(),
            cluster.label
        );
    }
    println!();

    println!("top job-name words by count:");
    for g in analysis.names.groups.iter().take(5) {
        println!("  {:<12} {:>6} jobs ({})", g.word, g.jobs, g.framework);
    }
}
