//! Columnar store walk-through: persist a generated workload as a
//! `swim-store` file, then answer the paper's Table 1 / Fig. 7 style
//! questions from disk — O(1) from the footer, streaming for a time
//! window (skipping chunks), and in parallel over all cores.
//!
//! ```text
//! cargo run --release --example columnar_store
//! ```

use swim::prelude::*;
use swim_core::timeseries::HourlySeries;
use swim_store::write_store_path;
use swim_trace::time::WEEK;

fn main() {
    // A week of the FB-2010-like workload at 2 % job scale.
    let trace = WorkloadGenerator::new(
        GeneratorConfig::new(WorkloadKind::Fb2010)
            .scale(0.02)
            .days(7.0)
            .seed(11),
    )
    .generate();
    println!("generated      : {} jobs", trace.len());

    // Persist as a columnar store and drop the in-memory trace.
    let path = std::env::temp_dir().join("fb2010-demo.swim");
    let stats = write_store_path(&trace, &path, &StoreOptions::default()).expect("write store");
    println!(
        "stored         : {} chunks, {} bytes ({:.1} B/job)",
        stats.chunks,
        stats.bytes_written,
        stats.bytes_written as f64 / stats.jobs.max(1) as f64
    );
    let expected_summary = trace.summary();
    drop(trace);

    // Reopen: the footer answers Table 1 questions without a scan.
    let store = Store::open(&path).expect("open store");
    let summary = store.summary();
    assert_eq!(summary, expected_summary);
    println!(
        "summary (O(1)) : {} jobs, {} moved over {}",
        summary.jobs, summary.bytes_moved, summary.length
    );

    // Stream one day out of the week; the index skips the other chunks.
    let day = store
        .scan_range(Timestamp::from_secs(0), Timestamp::from_secs(WEEK / 7))
        .expect("range scan");
    println!(
        "day scan       : reads {} of {} chunks ({} skipped via index)",
        day.selected_chunks(),
        store.chunk_count(),
        day.skipped_chunks
    );
    let series = HourlySeries::from_jobs(day.jobs().map(|j| j.expect("chunk decodes")));
    println!("day jobs/hour  : {:?}", &series.jobs);

    // Parallel fold: bytes moved by map-only jobs, across all cores.
    let map_only_bytes = store
        .par_scan(
            || DataSize::ZERO,
            |acc, job| {
                if job.is_map_only() {
                    acc + job.total_io()
                } else {
                    acc
                }
            },
            |a, b| a + b,
        )
        .expect("par scan");
    println!("map-only I/O   : {map_only_bytes} (computed with par_scan)");

    std::fs::remove_file(&path).ok();
}
