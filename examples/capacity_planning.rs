//! Provisioning study (§5 of the paper): replay one bursty workload under
//! varying cluster sizes and both schedulers, reporting queueing delay and
//! latency percentiles — the decision data a capacity planner needs when
//! the peak-to-median load ratio is 10:1 or worse.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use swim::prelude::*;
use swim_core::burstiness::Burstiness;
use swim_core::timeseries::HourlySeries;
use swim_sim::Simulator;

fn main() {
    let trace = WorkloadGenerator::new(
        GeneratorConfig::new(WorkloadKind::CcB)
            .scale(0.5)
            .days(4.0)
            .seed(29),
    )
    .generate();
    let plan = ReplayPlan::from_trace(&trace);

    let series = HourlySeries::of(&trace);
    let burst = Burstiness::of(&series.task_seconds, &[]);
    println!(
        "workload: {} ({} jobs; peak-to-median load {})",
        trace.kind,
        trace.len(),
        burst
            .map(|b| format!("{:.1}:1", b.peak_to_median))
            .unwrap_or_else(|| "n/a".into())
    );
    println!();
    println!(
        "{:>6} {:>6} {:>14} {:>14} {:>14} {:>12}",
        "nodes", "sched", "mean queue(s)", "median lat(s)", "p99 lat(s)", "makespan"
    );

    for nodes in [75u32, 150, 300, 600] {
        for fair in [false, true] {
            let mut config = SimConfig::new(nodes);
            if fair {
                config = config.fair();
            }
            let result = Simulator::new(config).run(&plan, None);
            println!(
                "{:>6} {:>6} {:>14.1} {:>14.0} {:>14.0} {:>12}",
                nodes,
                if fair { "fair" } else { "fifo" },
                result.mean_queue_delay(),
                result.median_latency(),
                result.latency_percentile(0.99),
                result.makespan
            );
        }
    }

    println!(
        "\nReading (paper §5–§6): under-provisioned clusters punish the \
         dominant small jobs with queueing delay far above their own \
         runtimes; the fair scheduler protects small-job latency against \
         head-of-line blocking by the rare huge jobs, at some cost to the \
         big jobs — the performance-tier / capacity-tier argument of §6.2."
    );
}
