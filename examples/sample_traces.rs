//! Regenerate the two bundled sample traces under `testdata/` that the
//! `swim-report` golden test and the CI docs job run against.
//!
//! ```text
//! cargo run --release --example sample_traces
//! ```
//!
//! The traces are small, deterministic slices of two calibrated
//! workloads, stored once in each on-disk format the report pipeline
//! accepts: CSV (no embedded metadata — the loader takes the label from
//! the file stem) and the `swim-store` columnar format (which carries its
//! own workload kind and machine count, and exercises `par_summary` plus
//! the chunk-skipping range scans in the pipeline's store fast path).

use swim::prelude::*;

fn main() {
    let dir = std::path::Path::new("testdata");
    std::fs::create_dir_all(dir).expect("create testdata/");

    // Sample A — a CC-e-like slice (paths and names present), as CSV.
    let cc_e = WorkloadGenerator::new(
        GeneratorConfig::new(WorkloadKind::CcE)
            .scale(0.2)
            .days(2.0)
            .seed(11),
    )
    .generate();
    let csv_path = dir.join("sample-a.csv");
    let file = std::fs::File::create(&csv_path).expect("create sample-a.csv");
    swim::trace::io::write_csv(&cc_e, file).expect("write sample-a.csv");
    println!("wrote {} ({} jobs)", csv_path.display(), cc_e.len());

    // Sample B — a CC-b-like slice, as a columnar store.
    let cc_b = WorkloadGenerator::new(
        GeneratorConfig::new(WorkloadKind::CcB)
            .scale(0.1)
            .days(1.5)
            .seed(13),
    )
    .generate();
    let store_path = dir.join("sample-b.swim");
    let stats = swim::store::write_store_path(&cc_b, &store_path, &StoreOptions::default())
        .expect("write sample-b.swim");
    println!(
        "wrote {} ({} jobs, {} chunks, {} bytes)",
        store_path.display(),
        stats.jobs,
        stats.chunks,
        stats.bytes_written
    );
}
