//! The full SWIM pipeline (§7 of the paper), end to end: synthesize a
//! scaled-down, replayable benchmark from a long workload trace, validate
//! it, and execute it on the simulator.
//!
//! ```text
//! cargo run --release --example synthesize_benchmark
//! ```

use swim::prelude::*;
use swim_sim::Simulator;
use swim_synth::scaledown::{scale_trace, ScaleConfig, ScaleMode};
use swim_synth::suite::WorkloadSuite;
use swim_synth::validate::SynthesisReport;

fn main() {
    // 1. The "production" trace: two weeks of FB-2009-like load.
    let source = WorkloadGenerator::new(
        GeneratorConfig::new(WorkloadKind::Fb2009)
            .scale(0.03)
            .days(14.0)
            .seed(3),
    )
    .generate();
    println!(
        "source    : {} jobs over {}, {}",
        source.len(),
        source.span(),
        source.bytes_moved()
    );

    // 2. Sample a representative synthetic day (hour windows).
    let sampled = sample_windows(&source, SampleConfig::one_day_from_hours(17));
    println!(
        "sampled   : {} jobs over {} (hour windows)",
        sampled.len(),
        sampled.span()
    );

    // 3. Validate the synthesis with per-dimension KS distances.
    let report = SynthesisReport::compare(&source, &sampled);
    println!(
        "validation: KS input {:.3} shuffle {:.3} output {:.3} duration {:.3} \
         task-time {:.3} inter-arrival {:.3} → worst {:.3}",
        report.input,
        report.shuffle,
        report.output,
        report.duration,
        report.task_time,
        report.interarrival,
        report.worst()
    );

    // 4. Scale the data down from 600 production nodes to a 20-node test rig.
    let scaled = scale_trace(
        &sampled,
        ScaleConfig {
            target_machines: 20,
            mode: ScaleMode::DataSize,
            seed: 0,
        },
    );
    println!("scaled    : 20 nodes, {} to move", scaled.bytes_moved());

    // 5. Emit the HDFS pre-population and replay plans, bundled as a suite.
    let mut suite = WorkloadSuite::new();
    suite.add_trace("fb2009-1day-20nodes", &scaled, DataSize::from_mb(128));
    let entry = suite.get("fb2009-1day-20nodes").expect("just added");
    println!(
        "datagen   : {} files / {} ({} blocks)",
        entry.datagen.file_count(),
        entry.datagen.total_bytes(),
        entry.datagen.total_blocks()
    );
    println!(
        "replay    : {} jobs, schedule {}",
        entry.replay.len(),
        entry.replay.schedule_length()
    );

    // 6. Execute on the simulated cluster (stand-in for the Hadoop rig).
    let result = Simulator::new(SimConfig::new(20)).run(&entry.replay, None);
    println!(
        "executed  : makespan {}, median latency {:.0} s, mean queue delay {:.1} s",
        result.makespan,
        result.median_latency(),
        result.mean_queue_delay()
    );

    // 7. Stress variant: same mix at 2× submission intensity.
    let stressed = entry.replay.accelerate(2.0);
    let stress_result = Simulator::new(SimConfig::new(20)).run(&stressed, None);
    println!(
        "2x stress : makespan {}, median latency {:.0} s, mean queue delay {:.1} s",
        stress_result.makespan,
        stress_result.median_latency(),
        stress_result.mean_queue_delay()
    );
}
