//! # swim
//!
//! A from-scratch Rust reproduction of *"Interactive Analytical Processing
//! in Big Data Systems: A Cross-Industry Study of MapReduce Workloads"*
//! (Chen, Alspaugh & Katz, VLDB 2012) and its companion tool **SWIM**,
//! the Statistical Workload Injector for MapReduce.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`trace`] — the per-job MapReduce trace data model (§3 schema);
//! * [`workloadgen`] — calibrated synthetic generators for the seven
//!   studied workloads (CC-a … CC-e, FB-2009, FB-2010);
//! * [`core`] — the characterization methodology: data access patterns
//!   (§4), temporal patterns (§5), computation patterns (§6);
//! * [`synth`] — the SWIM pipeline: sampling, scale-down, data
//!   generation, replay plans, and KS validation (§7);
//! * [`sim`] — a discrete-event MapReduce cluster simulator for replays;
//! * [`store`] — a columnar, chunked binary trace store with parallel
//!   chunked scans, for million-job histories that should not be
//!   re-parsed from text (or held in RAM) on every analysis;
//! * [`catalog`] — a sharded trace-dataset catalog: a directory of
//!   immutable `.swim` shards behind one versioned manifest, with atomic
//!   ingest, shard-level zone maps, a decoded-column LRU cache, and
//!   compaction;
//! * [`query`] — a vectorized filter/group/aggregate query engine over
//!   the store, with per-chunk zone maps (format v2) that let the
//!   planner skip chunks on any numeric-column predicate — and, over a
//!   catalog, federated execution with two-level (shard, then chunk)
//!   pruning;
//! * [`report`] — the document model (report → section → block), the
//!   Markdown/HTML renderers, and the parallel cross-trace comparison
//!   pipeline behind the `swim-report` binary;
//! * [`obs`] — the zero-dependency observability layer (counters,
//!   gauges, nearest-rank histograms, hierarchical timed spans) that
//!   every other crate instruments its hot paths with, surfaced through
//!   `swim-query --explain` / `--profile` and a JSONL sink;
//! * [`serve`] — a resident threaded TCP query server over a catalog
//!   directory: snapshot-isolated concurrent reads across
//!   `ingest`/`compact`/`vacuum`, bounded admission control, and a
//!   per-generation result cache (the `swim-serve` binary).
//!
//! ## Quick start
//!
//! ```
//! use swim::prelude::*;
//!
//! // Generate a small slice of the FB-2009-like workload ...
//! let trace = WorkloadGenerator::new(
//!     GeneratorConfig::new(WorkloadKind::Fb2009).scale(0.01).days(2.0).seed(7),
//! )
//! .generate();
//!
//! // ... characterize it with the paper's full methodology ...
//! let analysis = WorkloadAnalysis::of(&trace);
//! assert!(analysis.dominant_job_type_share() > 0.5);
//!
//! // ... and synthesize a scaled-down replayable benchmark from it.
//! let sampled = sample_windows(&trace, SampleConfig::one_day_from_hours(1));
//! let plan = ReplayPlan::from_trace(&sampled);
//! let result = Simulator::new(SimConfig::new(20)).run(&plan, None);
//! assert_eq!(result.outcomes.len(), plan.len());
//! ```

#![warn(missing_docs)]

pub use swim_catalog as catalog;
pub use swim_core as core;
pub use swim_obs as obs;
pub use swim_query as query;
pub use swim_report as report;
pub use swim_serve as serve;
pub use swim_sim as sim;
pub use swim_store as store;
pub use swim_synth as synth;
pub use swim_trace as trace;
pub use swim_workloadgen as workloadgen;

/// The most common imports in one place.
pub mod prelude {
    pub use swim_catalog::{Catalog, CatalogOptions};
    pub use swim_core::workload::WorkloadAnalysis;
    pub use swim_query::{CatalogQuery, Query};
    pub use swim_sim::{CachePolicy, SimConfig, Simulator};
    pub use swim_store::{Store, StoreOptions};
    pub use swim_synth::sample::{sample_windows, SampleConfig};
    pub use swim_synth::ReplayPlan;
    pub use swim_trace::trace::WorkloadKind;
    pub use swim_trace::{DataSize, Dur, Job, JobBuilder, Timestamp, Trace};
    pub use swim_workloadgen::{GeneratorConfig, WorkloadGenerator};
}
