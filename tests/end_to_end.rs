//! Cross-crate integration tests: generator → analysis → synthesizer →
//! simulator, asserting the calibration targets the paper publishes.

use swim::prelude::*;
use swim_core::access::{FileAccessStats, PathStage};
use swim_core::burstiness::Burstiness;
use swim_core::locality::LocalityStats;
use swim_core::timeseries::HourlySeries;
use swim_synth::scaledown::{scale_trace, ScaleConfig, ScaleMode};
use swim_synth::validate::SynthesisReport;
use swim_trace::trace::WorkloadKind;

fn gen(kind: WorkloadKind, scale: f64, days: f64, seed: u64) -> Trace {
    WorkloadGenerator::new(
        GeneratorConfig::new(kind)
            .scale(scale)
            .days(days)
            .seed(seed),
    )
    .generate()
}

#[test]
fn generated_zipf_slope_is_near_five_sixths() {
    // §4.2 / Fig. 2: rank–frequency slope magnitude ≈ 5/6 across workloads.
    let trace = gen(WorkloadKind::CcC, 1.0, 10.0, 101);
    let stats = FileAccessStats::gather(&trace, PathStage::Input);
    let fit = stats.zipf_fit(Some(300)).expect("enough files to fit");
    let magnitude = -fit.slope;
    assert!(
        (0.4..1.4).contains(&magnitude),
        "slope magnitude {magnitude:.3} too far from 5/6"
    );
    assert!(
        fit.r_squared > 0.7,
        "poor linear fit: R² {:.3}",
        fit.r_squared
    );
}

#[test]
fn generated_traces_show_temporal_locality() {
    // §4.3 / Fig. 5: ~75 % of re-accesses land within six hours. The
    // published number aggregates all workloads' re-accesses, so the
    // check does too (high-rate clusters dominate, as in the paper);
    // low-rate workloads individually still show meaningful locality.
    let mut within = 0.0;
    let mut total = 0.0;
    for kind in [
        WorkloadKind::CcB,
        WorkloadKind::CcC,
        WorkloadKind::CcD,
        WorkloadKind::CcE,
    ] {
        let trace = gen(kind, 1.0, 10.0, 102);
        let loc = LocalityStats::gather(&trace);
        let n = (loc.input_input_intervals.len() + loc.output_input_intervals.len()) as f64;
        within += loc.fraction_within(6.0 * 3600.0) * n;
        total += n;
        assert!(
            loc.fraction_within(6.0 * 3600.0) > 0.35,
            "{}: within-6h locality collapsed",
            trace.kind
        );
    }
    let aggregate = within / total;
    assert!(
        aggregate > 0.55,
        "aggregate within-6h locality {aggregate:.2} (paper ≈ 0.75)"
    );
}

#[test]
fn generated_burstiness_in_published_band() {
    // §5.2 / Fig. 8: peak-to-median of hourly task-time between ~5:1 and
    // a few hundred to one.
    let trace = gen(WorkloadKind::CcB, 1.0, 9.0, 103);
    let series = HourlySeries::of(&trace);
    let b = Burstiness::of(&series.task_seconds, &[]).expect("busy trace");
    assert!(
        (3.0..2000.0).contains(&b.peak_to_median),
        "peak-to-median {:.1}",
        b.peak_to_median
    );
}

#[test]
fn bytes_tasktime_correlation_dominates() {
    // §5.3 / Fig. 9.
    let trace = gen(WorkloadKind::Fb2009, 0.03, 10.0, 104);
    let c = HourlySeries::of(&trace).correlations();
    assert!(
        c.bytes_task_seconds > c.jobs_bytes && c.bytes_task_seconds > c.jobs_task_seconds,
        "jobs-bytes {:.2} jobs-task {:.2} bytes-task {:.2}",
        c.jobs_bytes,
        c.jobs_task_seconds,
        c.bytes_task_seconds
    );
}

#[test]
fn full_analysis_of_every_workload_succeeds() {
    for kind in WorkloadKind::PAPER_SEVEN {
        let scale = match kind {
            WorkloadKind::Fb2009 => 0.01,
            WorkloadKind::Fb2010 => 0.005,
            _ => 0.3,
        };
        let trace = gen(kind.clone(), scale, 3.0, 105);
        let analysis = WorkloadAnalysis::of(&trace);
        assert!(analysis.summary.jobs > 0, "{kind}");
        assert!(
            analysis.dominant_job_type_share() > 0.5,
            "{kind}: dominant share {:.2}",
            analysis.dominant_job_type_share()
        );
    }
}

#[test]
fn synthesis_pipeline_preserves_distributions_and_replays() {
    let source = gen(WorkloadKind::Fb2009, 0.02, 10.0, 106);
    let sampled = sample_windows(&source, SampleConfig::one_day_from_hours(9));
    let report = SynthesisReport::compare(&source, &sampled);
    assert!(
        report.passes(0.25),
        "KS distances too large: worst {:.3}",
        report.worst()
    );

    let scaled = scale_trace(
        &sampled,
        ScaleConfig {
            target_machines: 30,
            mode: ScaleMode::DataSize,
            seed: 0,
        },
    );
    let plan = ReplayPlan::from_trace(&scaled);
    assert_eq!(plan.len(), scaled.len());

    let result = Simulator::new(SimConfig::new(30)).run(&plan, None);
    assert_eq!(result.outcomes.len(), plan.len(), "work conservation");
    // Every job finishes at or after its submission.
    for o in &result.outcomes {
        assert!(o.finish >= o.submit);
        assert!(o.first_start >= o.submit);
    }
}

#[test]
fn simulator_utilization_bounded_by_cluster_slots() {
    let trace = gen(WorkloadKind::CcE, 0.5, 3.0, 107);
    let plan = ReplayPlan::from_trace(&trace);
    let nodes = 50;
    let result = Simulator::new(SimConfig::new(nodes)).run(&plan, None);
    let slot_cap = (nodes * 4) as f64;
    for (h, &u) in result.hourly_utilization.iter().enumerate() {
        assert!(u <= slot_cap + 1e-9, "hour {h}: {u} > {slot_cap}");
        assert!(u >= 0.0);
    }
}

#[test]
fn cache_policies_ordered_by_generosity() {
    // Unlimited ≥ threshold/LRU on hit rate, for the same access stream.
    use swim_sim::CachePolicy;
    use swim_trace::PathId;
    let trace = gen(WorkloadKind::CcC, 0.3, 3.0, 108);
    let plan = ReplayPlan::from_trace(&trace);
    let paths: Vec<PathId> = trace.jobs().iter().map(|j| j.input_paths[0]).collect();
    let hit_rate = |policy: CachePolicy| {
        let cfg = SimConfig::new(100).with_cache(policy, DataSize::from_gb(100));
        Simulator::new(cfg)
            .run(&plan, Some(&paths))
            .cache
            .unwrap()
            .hit_rate()
    };
    let unlimited = hit_rate(CachePolicy::Unlimited);
    let lru = hit_rate(CachePolicy::Lru);
    let threshold = hit_rate(CachePolicy::SizeThreshold {
        threshold: DataSize::from_gb(1),
    });
    assert!(
        unlimited > 0.2,
        "even unbounded cache shows no re-access hits"
    );
    assert!(unlimited + 1e-9 >= lru, "unlimited {unlimited} < lru {lru}");
    assert!(unlimited + 1e-9 >= threshold);
}

#[test]
fn trace_codecs_round_trip_generated_traces() {
    let trace = gen(WorkloadKind::CcB, 0.1, 2.0, 109);
    let mut buf = Vec::new();
    swim_trace::io::write_jsonl(&trace, &mut buf).unwrap();
    let back = swim_trace::io::read_jsonl(&buf[..]).unwrap();
    assert_eq!(back, trace);

    let csv = swim_trace::io::to_csv_string(&trace).unwrap();
    let back = swim_trace::io::from_csv_string(trace.kind.clone(), trace.machines, &csv).unwrap();
    assert_eq!(back.len(), trace.len());
    assert_eq!(back.bytes_moved(), trace.bytes_moved());
}

#[test]
fn merged_workloads_are_less_bursty() {
    // §5.2: multiplexing workloads decreases burstiness. Merge several
    // phase-shifted copies and compare peak-to-median.
    let a = gen(WorkloadKind::CcB, 0.5, 5.0, 110);
    let b = gen(WorkloadKind::CcB, 0.5, 5.0, 111);
    let c = gen(WorkloadKind::CcB, 0.5, 5.0, 112);
    let merged = a.merge(&b).merge(&c);
    let p2m = |t: &Trace| {
        let s = HourlySeries::of(t);
        Burstiness::of(&s.task_seconds, &[]).map(|b| b.peak_to_median)
    };
    let (Some(single), Some(multi)) = (p2m(&a), p2m(&merged)) else {
        panic!("burstiness undefined");
    };
    assert!(
        multi < single * 1.05,
        "merged {multi:.1}:1 not below single {single:.1}:1"
    );
}
