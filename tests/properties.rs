//! Property-based tests (proptest) for the core invariants across crates.

use proptest::prelude::*;
use swim::prelude::*;
use swim_core::stats::Ecdf;
use swim_synth::validate::ks_distance;
use swim_trace::trace::WorkloadKind;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantile is monotone in p and bounded by min/max.
    #[test]
    fn ecdf_quantile_monotone(mut samples in prop::collection::vec(0.0f64..1e12, 1..200),
                              p1 in 0.0f64..1.0, p2 in 0.0f64..1.0) {
        samples.iter_mut().for_each(|s| *s = s.abs());
        let e = Ecdf::new(samples.clone());
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        prop_assert!(e.quantile(lo) <= e.quantile(hi));
        prop_assert!(e.quantile(0.0) >= e.min() - 1e-9);
        prop_assert!(e.quantile(1.0) <= e.max() + 1e-9);
    }

    /// CDF at any point lies in [0,1] and is 1 at the maximum.
    #[test]
    fn ecdf_cdf_bounds(samples in prop::collection::vec(-1e9f64..1e9, 1..100),
                       x in -2e9f64..2e9) {
        let e = Ecdf::new(samples);
        let c = e.cdf(x);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert_eq!(e.cdf(e.max()), 1.0);
    }

    /// KS distance is a pseudo-metric: symmetric, in [0,1], zero on self.
    #[test]
    fn ks_distance_is_pseudo_metric(a in prop::collection::vec(-1e6f64..1e6, 1..80),
                                    b in prop::collection::vec(-1e6f64..1e6, 1..80)) {
        let dab = ks_distance(&a, &b).unwrap();
        let dba = ks_distance(&b, &a).unwrap();
        prop_assert!((dab - dba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&dab));
        prop_assert_eq!(ks_distance(&a, &a).unwrap(), 0.0);
    }

    /// DataSize arithmetic: scaling by ≤1 never grows a size, and scaling
    /// by exactly 1 is the identity within f64's exact-integer range
    /// (2^53; `scale` is documented as f64-mediated).
    #[test]
    fn datasize_scale_monotone(bytes in 0u64..(1u64 << 53), f in 0.0f64..1.0) {
        let d = DataSize::from_bytes(bytes);
        prop_assert!(d.scale(f) <= d + DataSize::from_bytes(1));
        prop_assert_eq!(d.scale(1.0), d);
        prop_assert_eq!(d + DataSize::ZERO, d);
    }

    /// Trace construction sorts by submit and select_range is consistent.
    #[test]
    fn trace_ordering_invariants(submits in prop::collection::vec(0u64..1_000_000, 1..60)) {
        let jobs: Vec<Job> = submits.iter().enumerate().map(|(i, &s)| {
            JobBuilder::new(i as u64)
                .submit(Timestamp::from_secs(s))
                .duration(Dur::from_secs(10))
                .input(DataSize::from_mb(1))
                .map_task_time(Dur::from_secs(5))
                .tasks(1, 0)
                .build()
                .unwrap()
        }).collect();
        let trace = Trace::new(WorkloadKind::Custom("prop".into()), 1, jobs).unwrap();
        prop_assert!(trace.jobs().windows(2).all(|w| w[0].submit <= w[1].submit));
        let mid = Timestamp::from_secs(500_000);
        let early = trace.select_range(Timestamp::ZERO, mid);
        let late = trace.select_range(mid, Timestamp::from_secs(u32::MAX as u64));
        prop_assert_eq!(early.len() + late.len(), trace.len());
    }

    /// Burstiness ratios are monotone and ≥ peak at 100th percentile.
    #[test]
    fn burstiness_monotonicity(signal in prop::collection::vec(1.0f64..1e6, 4..200)) {
        use swim_core::burstiness::Burstiness;
        if let Some(b) = Burstiness::of(&signal, &[]) {
            prop_assert!(b.points.windows(2).all(|w| w[0].ratio <= w[1].ratio + 1e-9));
            let p100 = b.points.last().unwrap().ratio;
            prop_assert!(b.peak_to_median >= p100 - 1e-9);
        }
    }

    /// Replay plans conserve bytes and schedule length for any trace.
    #[test]
    fn replay_plan_conservation(n in 1usize..40, seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let jobs: Vec<Job> = (0..n).map(|i| {
            JobBuilder::new(i as u64)
                .submit(Timestamp::from_secs(rng.random_range(0..100_000)))
                .duration(Dur::from_secs(rng.random_range(1..1000)))
                .input(DataSize::from_bytes(rng.random_range(0..1_000_000_000)))
                .output(DataSize::from_bytes(rng.random_range(0..1_000_000_000)))
                .map_task_time(Dur::from_secs(rng.random_range(1..1000)))
                .tasks(rng.random_range(1..50), 0)
                .build()
                .unwrap()
        }).collect();
        let trace = Trace::new(WorkloadKind::Custom("rp".into()), 5, jobs).unwrap();
        let plan = ReplayPlan::from_trace(&trace);
        prop_assert_eq!(plan.total_bytes(), trace.bytes_moved());
        prop_assert_eq!(
            plan.schedule_length().secs(),
            trace.end().unwrap().secs()
        );
    }

    /// The simulator completes every job exactly once, in any plan.
    #[test]
    fn simulator_work_conservation(n in 1usize..25, seed in 0u64..500) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let jobs: Vec<swim_synth::ReplayJob> = (0..n).map(|_| {
            let reduce_tasks = rng.random_range(0..4u32);
            swim_synth::ReplayJob {
                gap: Dur::from_secs(rng.random_range(0..300)),
                input: DataSize::from_mb(rng.random_range(1..100)),
                shuffle: if reduce_tasks > 0 { DataSize::from_mb(1) } else { DataSize::ZERO },
                output: DataSize::from_mb(rng.random_range(1..100)),
                map_task_time: Dur::from_secs(rng.random_range(1..500)),
                reduce_task_time: if reduce_tasks > 0 {
                    Dur::from_secs(rng.random_range(1..500))
                } else {
                    Dur::ZERO
                },
                map_tasks: rng.random_range(1..20),
                reduce_tasks,
            }
        }).collect();
        let plan = swim_synth::ReplayPlan { name: "prop".into(), machines: 3, jobs };
        let result = Simulator::new(SimConfig::new(3)).run(&plan, None);
        prop_assert_eq!(result.outcomes.len(), plan.len());
        // Outcomes are keyed uniquely by job index.
        let mut ids: Vec<usize> = result.outcomes.iter().map(|o| o.job).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), plan.len());
    }

    /// Generator determinism: same seed → identical traces, any scale.
    #[test]
    fn generator_determinism(seed in 0u64..100) {
        let make = || WorkloadGenerator::new(
            GeneratorConfig::new(WorkloadKind::CcA).scale(0.2).days(1.0).seed(seed),
        ).generate();
        prop_assert_eq!(make(), make());
    }
}
